//! The seven-gene design space of the paper's integrated optimisation and the
//! simulation-backed objective function.
//!
//! The paper optimises three micro-generator coil parameters (outer radius
//! `R`, turns `N`, resistance `Rc`) and four voltage-transformer parameters
//! (primary resistance and turns, secondary resistance and turns); the
//! chromosome therefore has seven genes. The objective is the super-capacitor
//! charging rate, evaluated by simulating the complete coupled system.

use crate::report::Table;
use harvester_core::booster::BoosterConfig;
use harvester_core::params::TransformerBoosterParams;
use harvester_core::system::HarvesterConfig;
use harvester_core::{EnvelopeOptions, EnvelopeSimulator, EnvelopeWorkspace, SteadyState};
use harvester_mna::transient::{SolverBackend, StepControl};
use harvester_optim::{
    Bounds, Objective, ObjectiveMut, ParallelEvaluator, Parallelism, ThreadLocalObjective,
};

/// Index of each gene in the chromosome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gene {
    /// Coil outer radius in metres.
    CoilOuterRadius = 0,
    /// Number of coil turns.
    CoilTurns = 1,
    /// Coil internal resistance in ohms.
    CoilResistance = 2,
    /// Transformer primary winding resistance in ohms.
    PrimaryResistance = 3,
    /// Transformer primary turns.
    PrimaryTurns = 4,
    /// Transformer secondary winding resistance in ohms.
    SecondaryResistance = 5,
    /// Transformer secondary turns.
    SecondaryTurns = 6,
}

impl Gene {
    /// Short parameter name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Gene::CoilOuterRadius => "coil_outer_radius",
            Gene::CoilTurns => "coil_turns",
            Gene::CoilResistance => "coil_resistance",
            Gene::PrimaryResistance => "primary_resistance",
            Gene::PrimaryTurns => "primary_turns",
            Gene::SecondaryResistance => "secondary_resistance",
            Gene::SecondaryTurns => "secondary_turns",
        }
    }
}

/// Number of genes in the paper's chromosome.
pub const GENE_COUNT: usize = 7;

/// The gene bounds used by the optimisation experiments (a generous box
/// around the paper's Table 1 values).
pub fn paper_bounds() -> Bounds {
    Bounds::new(&[
        (0.8e-3, 1.6e-3), // coil outer radius R
        (1200.0, 3200.0), // coil turns N
        (600.0, 2600.0),  // coil resistance Rc
        (50.0, 900.0),    // primary winding resistance
        (800.0, 3200.0),  // primary turns
        (200.0, 1600.0),  // secondary winding resistance
        (2000.0, 7000.0), // secondary turns
    ])
}

/// Encodes a harvester configuration into the seven-gene chromosome.
pub fn encode(config: &HarvesterConfig) -> Vec<f64> {
    let booster = match &config.booster {
        BoosterConfig::Transformer(p) => *p,
        _ => TransformerBoosterParams::unoptimised(),
    };
    vec![
        config.generator.outer_radius,
        config.generator.coil_turns,
        config.generator.coil_resistance,
        booster.primary_resistance,
        booster.primary_turns,
        booster.secondary_resistance,
        booster.secondary_turns,
    ]
}

/// Decodes a chromosome into a full harvester configuration, starting from
/// `base` (which supplies everything the genes do not cover: mass, spring,
/// magnets, storage, vibration, generator model).
///
/// Physical consistency is enforced: the coil resistance is floored at the
/// minimum achievable for the requested turns and radius, and the coil
/// inductance scales with the square of the turn count.
///
/// # Panics
///
/// Panics if `genes` does not have [`GENE_COUNT`] entries.
pub fn decode(base: &HarvesterConfig, genes: &[f64]) -> HarvesterConfig {
    assert_eq!(
        genes.len(),
        GENE_COUNT,
        "chromosome must have {GENE_COUNT} genes"
    );
    let mut config = base.clone();
    // The coil must stay inside the magnet structure (the seven-section
    // coupling function requires H > 2·R), so the radius gene is clamped to
    // the geometry of the base design.
    config.generator.outer_radius = genes[Gene::CoilOuterRadius as usize]
        .min(0.49 * base.generator.magnet_height)
        .max(1.01 * base.generator.inner_radius);
    config.generator.coil_turns = genes[Gene::CoilTurns as usize];
    config.generator.coil_resistance = genes[Gene::CoilResistance as usize];
    // Physical-consistency floor: a coil with more turns in a smaller window
    // cannot have an arbitrarily small resistance.
    let floor = config.generator.minimum_coil_resistance();
    if config.generator.coil_resistance < floor {
        config.generator.coil_resistance = floor;
    }
    // Inductance scales with N².
    let base_turns = base.generator.coil_turns;
    config.generator.coil_inductance =
        base.generator.coil_inductance * (config.generator.coil_turns / base_turns).powi(2);

    let mut booster = match &base.booster {
        BoosterConfig::Transformer(p) => *p,
        _ => TransformerBoosterParams::unoptimised(),
    };
    booster.primary_resistance = genes[Gene::PrimaryResistance as usize];
    booster.primary_turns = genes[Gene::PrimaryTurns as usize];
    booster.secondary_resistance = genes[Gene::SecondaryResistance as usize];
    booster.secondary_turns = genes[Gene::SecondaryTurns as usize];
    config.booster = BoosterConfig::Transformer(booster);
    config
}

/// How thoroughly each fitness evaluation simulates the harvester.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitnessBudget {
    /// Vibration cycles simulated before the measurement window.
    pub settle_cycles: f64,
    /// Vibration cycles averaged for the charging-current measurement.
    pub measure_cycles: f64,
    /// Detailed time step in seconds.
    pub detail_dt: f64,
    /// Storage voltage at which the charging current is evaluated (the
    /// fitness is the cycle-averaged current delivered into the storage held
    /// at this voltage — proportional to the charging rate of the paper's
    /// large super-capacitor around that operating point).
    pub reference_voltage: f64,
    /// Linear-solver backend used by every fitness simulation.
    pub backend: SolverBackend,
    /// Time-step control of every fitness simulation. Defaults to
    /// [`StepControl::adaptive_averaging`]: the optimisation loop's dominant cost is
    /// exactly the smooth-between-corners transient workload LTE control
    /// accelerates, and the cycle-averaged fitness is insensitive to the
    /// sub-tolerance trace differences. Set [`StepControl::Fixed`] to
    /// reproduce pre-adaptive optimisation runs bit-for-bit.
    pub step_control: StepControl,
    /// How the population-level loops (GA generations, the design-space
    /// sweep, the CPU-split batches) shard their candidate evaluations over
    /// worker threads. Results are bit-identical for every choice; this knob
    /// moves wall-clock time only.
    pub parallelism: Parallelism,
    /// How each fitness measurement reaches its periodic steady state:
    /// shooting-Newton closure by default (with automatic brute-force
    /// fallback per grid point), or plain settling via
    /// [`SteadyState::BruteForce`] to reproduce pre-shooting optimisation
    /// runs. Shooting compounds with the parallel evaluator: every worker's
    /// fitness transients shrink from `settle + measure` cycles to a
    /// handful of shooting cycles.
    pub steady_state: SteadyState,
}

impl Default for FitnessBudget {
    fn default() -> Self {
        FitnessBudget {
            settle_cycles: 40.0,
            measure_cycles: 8.0,
            detail_dt: 1e-4,
            reference_voltage: 1.0,
            backend: SolverBackend::Auto,
            step_control: StepControl::adaptive_averaging(),
            parallelism: Parallelism::Auto,
            steady_state: SteadyState::default(),
        }
    }
}

impl FitnessBudget {
    /// A deliberately coarse budget for unit tests and smoke runs: fewer
    /// settling cycles and a low reference voltage so that even a design that
    /// has not fully reached mechanical steady state delivers measurable
    /// charge.
    pub fn coarse() -> Self {
        FitnessBudget {
            settle_cycles: 15.0,
            measure_cycles: 4.0,
            detail_dt: 2e-4,
            reference_voltage: 0.25,
            backend: SolverBackend::Auto,
            step_control: StepControl::adaptive_averaging(),
            parallelism: Parallelism::Auto,
            steady_state: SteadyState::default(),
        }
    }

    /// The same budget with a different parallelism policy.
    pub fn with_parallelism(self, parallelism: Parallelism) -> Self {
        FitnessBudget {
            parallelism,
            ..self
        }
    }
}

/// The simulation-backed objective of the integrated optimisation loop
/// (Fig. 8): decode the chromosome, simulate the complete coupled harvester,
/// and return the charging figure of merit.
#[derive(Debug, Clone)]
pub struct HarvesterObjective {
    base: HarvesterConfig,
    budget: FitnessBudget,
}

impl HarvesterObjective {
    /// Creates the objective around a base configuration.
    pub fn new(base: HarvesterConfig, budget: FitnessBudget) -> Self {
        HarvesterObjective { base, budget }
    }

    /// The base configuration the chromosome perturbs.
    pub fn base(&self) -> &HarvesterConfig {
        &self.base
    }

    /// The per-evaluation simulation budget.
    pub fn budget(&self) -> &FitnessBudget {
        &self.budget
    }

    /// Evaluates the charging figure of merit (average charging current in
    /// amperes into the reference-voltage storage) for a full configuration.
    pub fn charging_current(&self, config: &HarvesterConfig) -> f64 {
        self.charging_current_with(config, &mut EnvelopeWorkspace::default())
    }

    /// As [`HarvesterObjective::charging_current`], but reusing an external
    /// simulation workspace — bit-identical results, no per-solve matrix and
    /// buffer allocation. This is the hot path of the optimisation loop; the
    /// workspace normally belongs to one evaluator worker (see
    /// [`HarvesterObjective::thread_local`]).
    pub fn charging_current_with(
        &self,
        config: &HarvesterConfig,
        workspace: &mut EnvelopeWorkspace,
    ) -> f64 {
        let envelope = EnvelopeOptions {
            voltage_points: 2,
            max_voltage: self.budget.reference_voltage.max(1e-3),
            settle_cycles: self.budget.settle_cycles,
            measure_cycles: self.budget.measure_cycles,
            detail_dt: self.budget.detail_dt,
            horizon: 1.0,
            output_points: 2,
            backend: self.budget.backend,
            step_control: self.budget.step_control,
            steady_state: self.budget.steady_state,
            ..EnvelopeOptions::default()
        };
        let sim = EnvelopeSimulator::new(config.clone(), envelope);
        match sim.measure_characteristic_with(workspace) {
            Ok(characteristic) => characteristic.current_at(self.budget.reference_voltage),
            // A design whose simulation fails (e.g. a pathological corner of
            // the design space) is simply a very bad design.
            Err(_) => f64::NEG_INFINITY,
        }
    }

    /// Chromosome-level evaluation against an external workspace (the
    /// mutable twin of the [`Objective`] implementation).
    pub fn evaluate_with(&self, genes: &[f64], workspace: &mut EnvelopeWorkspace) -> f64 {
        if genes.len() != GENE_COUNT {
            return f64::NEG_INFINITY;
        }
        let config = decode(&self.base, genes);
        if !config.generator.is_valid() {
            return f64::NEG_INFINITY;
        }
        self.charging_current_with(&config, workspace)
    }

    /// Wraps this objective in a [`ThreadLocalObjective`] pool: each
    /// evaluator worker gets its own [`HarvesterWorker`] — a clone of the
    /// objective plus one owned [`EnvelopeWorkspace`] — reused across every
    /// candidate and generation that worker simulates. Pass the result to
    /// any [`harvester_optim::Optimizer`] or [`ParallelEvaluator`].
    pub fn thread_local(
        &self,
    ) -> ThreadLocalObjective<HarvesterWorker, impl Fn() -> HarvesterWorker + '_> {
        ThreadLocalObjective::new(move || HarvesterWorker {
            objective: self.clone(),
            workspace: EnvelopeWorkspace::new(),
        })
    }
}

impl Objective for HarvesterObjective {
    fn evaluate(&self, genes: &[f64]) -> f64 {
        self.evaluate_with(genes, &mut EnvelopeWorkspace::default())
    }
}

/// One evaluator worker's view of the harvester objective: a clone of the
/// [`HarvesterObjective`] plus an owned simulation workspace whose
/// allocations are reused across every candidate the worker evaluates.
/// Built by [`HarvesterObjective::thread_local`].
#[derive(Debug)]
pub struct HarvesterWorker {
    objective: HarvesterObjective,
    workspace: EnvelopeWorkspace,
}

impl ObjectiveMut for HarvesterWorker {
    fn evaluate_mut(&mut self, genes: &[f64]) -> f64 {
        self.objective.evaluate_with(genes, &mut self.workspace)
    }
}

/// Options for the design-space sweep: a grid over two genes of the paper's
/// chromosome, every grid point scored by the full coupled simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOptions {
    /// Gene varied along the rows of the grid.
    pub gene_a: Gene,
    /// Gene varied along the columns of the grid.
    pub gene_b: Gene,
    /// Number of grid points along `gene_a` (≥ 1).
    pub steps_a: usize,
    /// Number of grid points along `gene_b` (≥ 1).
    pub steps_b: usize,
    /// Simulation budget of each grid-point evaluation, including the
    /// [`FitnessBudget::parallelism`] the sweep shards its grid with.
    pub fitness: FitnessBudget,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            gene_a: Gene::CoilTurns,
            gene_b: Gene::SecondaryTurns,
            steps_a: 5,
            steps_b: 5,
            fitness: FitnessBudget::default(),
        }
    }
}

impl SweepOptions {
    /// A tiny grid with a coarse budget for unit tests and smoke runs.
    pub fn coarse() -> Self {
        SweepOptions {
            steps_a: 2,
            steps_b: 2,
            fitness: FitnessBudget::coarse(),
            ..SweepOptions::default()
        }
    }
}

/// The fitness landscape measured by [`sweep_design_space`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Gene varied along the rows.
    pub gene_a: Gene,
    /// Gene varied along the columns.
    pub gene_b: Gene,
    /// Grid values of `gene_a`.
    pub values_a: Vec<f64>,
    /// Grid values of `gene_b`.
    pub values_b: Vec<f64>,
    /// Fitness at each grid point, row-major (`values_a.len() *
    /// values_b.len()` entries; failed simulations are `-inf`).
    pub fitness: Vec<f64>,
}

impl SweepResult {
    /// Fitness at grid point `(ia, ib)`.
    pub fn fitness_at(&self, ia: usize, ib: usize) -> f64 {
        self.fitness[ia * self.values_b.len() + ib]
    }

    /// The best grid point as `(value_a, value_b, fitness)` under the
    /// NaN-last ordering.
    pub fn best_point(&self) -> (f64, f64, f64) {
        let k = harvester_optim::best_index(&self.fitness);
        let (ia, ib) = (k / self.values_b.len(), k % self.values_b.len());
        (self.values_a[ia], self.values_b[ib], self.fitness[k])
    }

    /// Formats the landscape as a report table (one row per grid point).
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            self.gene_a.name().to_string(),
            self.gene_b.name().to_string(),
            "fitness_A".to_string(),
        ]);
        for (ia, va) in self.values_a.iter().enumerate() {
            for (ib, vb) in self.values_b.iter().enumerate() {
                table.push_row(vec![
                    format!("{va:.4}"),
                    format!("{vb:.4}"),
                    format!("{:.6e}", self.fitness_at(ia, ib)),
                ]);
            }
        }
        table
    }
}

/// Maps the fitness landscape the Fig. 8 optimiser searches: holds every
/// gene of `base` fixed except two, sweeps those over a grid inside the
/// paper bounds, and scores each grid point with the coupled simulation.
///
/// Every grid point is independent, so the sweep is sharded through the same
/// [`ParallelEvaluator`] / per-worker-workspace machinery as the GA's
/// generations ([`FitnessBudget::parallelism`]); the resulting landscape is
/// bit-identical for any worker count.
pub fn sweep_design_space(base: &HarvesterConfig, options: &SweepOptions) -> SweepResult {
    assert!(
        options.steps_a >= 1 && options.steps_b >= 1,
        "sweep needs at least one grid point per axis"
    );
    let bounds = paper_bounds();
    let grid = |gene: Gene, steps: usize| -> Vec<f64> {
        let (lo, hi) = (bounds.lower()[gene as usize], bounds.upper()[gene as usize]);
        (0..steps)
            .map(|k| lo + (hi - lo) * k as f64 / (steps - 1).max(1) as f64)
            .collect()
    };
    let values_a = grid(options.gene_a, options.steps_a);
    let values_b = grid(options.gene_b, options.steps_b);

    let template = encode(base);
    let mut candidates = Vec::with_capacity(values_a.len() * values_b.len());
    for va in &values_a {
        for vb in &values_b {
            let mut genes = template.clone();
            genes[options.gene_a as usize] = *va;
            genes[options.gene_b as usize] = *vb;
            candidates.push(genes);
        }
    }

    let objective = HarvesterObjective::new(base.clone(), options.fitness);
    let pooled = objective.thread_local();
    let evaluator = ParallelEvaluator::new(options.fitness.parallelism);
    let fitness = evaluator
        .evaluate(&pooled, &candidates)
        .iter()
        .map(|e| e.fitness())
        .collect();
    SweepResult {
        gene_a: options.gene_a,
        gene_b: options.gene_b,
        values_a,
        values_b,
        fitness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvester_core::params::MicroGeneratorParams;

    #[test]
    fn encode_decode_roundtrip_preserves_the_paper_design() {
        let base = HarvesterConfig::unoptimised();
        let genes = encode(&base);
        assert_eq!(genes.len(), GENE_COUNT);
        assert_eq!(genes[Gene::CoilTurns as usize], 2300.0);
        assert_eq!(genes[Gene::SecondaryTurns as usize], 5000.0);
        let decoded = decode(&base, &genes);
        assert_eq!(decoded.generator.coil_turns, base.generator.coil_turns);
        assert_eq!(decoded.generator.outer_radius, base.generator.outer_radius);
        match decoded.booster {
            BoosterConfig::Transformer(p) => {
                assert_eq!(p.primary_turns, 2000.0);
                assert_eq!(p.secondary_resistance, 1000.0);
            }
            _ => panic!("decode must produce a transformer booster"),
        }
    }

    #[test]
    fn paper_designs_lie_inside_the_bounds() {
        let bounds = paper_bounds();
        for config in [
            HarvesterConfig::unoptimised(),
            HarvesterConfig::optimised_paper(),
        ] {
            let mut genes = encode(&config);
            let before = genes.clone();
            bounds.clamp(&mut genes);
            assert_eq!(genes, before, "paper design must not be clamped");
        }
    }

    #[test]
    fn decode_enforces_the_coil_resistance_floor() {
        let base = HarvesterConfig::unoptimised();
        let mut genes = encode(&base);
        genes[Gene::CoilResistance as usize] = 1.0; // absurdly low
        let decoded = decode(&base, &genes);
        assert!(
            decoded.generator.coil_resistance
                >= MicroGeneratorParams {
                    coil_resistance: 1.0,
                    ..decoded.generator
                }
                .minimum_coil_resistance()
        );
        assert!(decoded.generator.coil_resistance > 100.0);
    }

    #[test]
    fn decode_scales_inductance_with_turns() {
        let base = HarvesterConfig::unoptimised();
        let mut genes = encode(&base);
        genes[Gene::CoilTurns as usize] = 4600.0; // double the turns
        let decoded = decode(&base, &genes);
        assert!(
            (decoded.generator.coil_inductance - 4.0 * base.generator.coil_inductance).abs() < 1e-9
        );
    }

    #[test]
    fn objective_rejects_malformed_chromosomes() {
        let objective =
            HarvesterObjective::new(HarvesterConfig::unoptimised(), FitnessBudget::coarse());
        assert_eq!(objective.evaluate(&[1.0, 2.0]), f64::NEG_INFINITY);
        assert_eq!(objective.base().generator.coil_turns, 2300.0);
        assert_eq!(objective.budget().reference_voltage, 0.25);
    }

    #[test]
    fn objective_scores_the_paper_design_positively() {
        let objective =
            HarvesterObjective::new(HarvesterConfig::unoptimised(), FitnessBudget::coarse());
        let genes = encode(&HarvesterConfig::unoptimised());
        let fitness = objective.evaluate(&genes);
        assert!(
            fitness > 0.0,
            "the Table 1 design must deliver positive charging current, got {fitness}"
        );
        assert!(fitness < 1.0, "charging current should be well below 1 A");
    }

    #[test]
    #[should_panic(expected = "genes")]
    fn decode_panics_on_wrong_length() {
        let _ = decode(&HarvesterConfig::unoptimised(), &[0.0; 3]);
    }

    #[test]
    fn worker_pool_evaluation_matches_the_plain_objective_bitwise() {
        let objective =
            HarvesterObjective::new(HarvesterConfig::unoptimised(), FitnessBudget::coarse());
        let genes = encode(&HarvesterConfig::unoptimised());
        let plain = objective.evaluate(&genes);

        let pooled = objective.thread_local();
        // Two passes through the pool: the second reuses the worker's
        // workspace and must not drift.
        let first = pooled.evaluate(&genes);
        let second = pooled.evaluate(&genes);
        assert_eq!(plain.to_bits(), first.to_bits());
        assert_eq!(plain.to_bits(), second.to_bits());
        assert_eq!(pooled.pooled_instances(), 1);
    }

    #[test]
    fn sweep_covers_the_grid_and_finds_an_interior_best() {
        let base = HarvesterConfig::unoptimised();
        let options = SweepOptions::coarse();
        let result = sweep_design_space(&base, &options);
        assert_eq!(result.values_a.len(), 2);
        assert_eq!(result.values_b.len(), 2);
        assert_eq!(result.fitness.len(), 4);
        let bounds = paper_bounds();
        assert_eq!(result.values_a[0], bounds.lower()[Gene::CoilTurns as usize]);
        assert_eq!(
            *result.values_a.last().unwrap(),
            bounds.upper()[Gene::CoilTurns as usize]
        );
        let (va, vb, best) = result.best_point();
        assert!(result.values_a.contains(&va));
        assert!(result.values_b.contains(&vb));
        assert!(
            best > 0.0,
            "at least one corner of the grid must charge, got {best}"
        );
        let text = result.table().to_string();
        assert!(text.contains("coil_turns") && text.contains("secondary_turns"));
    }

    #[test]
    fn fitness_budget_parallelism_builder() {
        let budget = FitnessBudget::coarse().with_parallelism(Parallelism::Threads(3));
        assert_eq!(budget.parallelism, Parallelism::Threads(3));
        assert_eq!(
            budget.reference_voltage,
            FitnessBudget::coarse().reference_voltage
        );
    }
}
