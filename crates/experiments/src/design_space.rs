//! The seven-gene design space of the paper's integrated optimisation and the
//! simulation-backed objective function.
//!
//! The paper optimises three micro-generator coil parameters (outer radius
//! `R`, turns `N`, resistance `Rc`) and four voltage-transformer parameters
//! (primary resistance and turns, secondary resistance and turns); the
//! chromosome therefore has seven genes. The objective is the super-capacitor
//! charging rate, evaluated by simulating the complete coupled system.

use harvester_core::booster::BoosterConfig;
use harvester_core::params::TransformerBoosterParams;
use harvester_core::system::HarvesterConfig;
use harvester_core::{EnvelopeOptions, EnvelopeSimulator};
use harvester_mna::transient::SolverBackend;
use harvester_optim::{Bounds, Objective};

/// Index of each gene in the chromosome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gene {
    /// Coil outer radius in metres.
    CoilOuterRadius = 0,
    /// Number of coil turns.
    CoilTurns = 1,
    /// Coil internal resistance in ohms.
    CoilResistance = 2,
    /// Transformer primary winding resistance in ohms.
    PrimaryResistance = 3,
    /// Transformer primary turns.
    PrimaryTurns = 4,
    /// Transformer secondary winding resistance in ohms.
    SecondaryResistance = 5,
    /// Transformer secondary turns.
    SecondaryTurns = 6,
}

/// Number of genes in the paper's chromosome.
pub const GENE_COUNT: usize = 7;

/// The gene bounds used by the optimisation experiments (a generous box
/// around the paper's Table 1 values).
pub fn paper_bounds() -> Bounds {
    Bounds::new(&[
        (0.8e-3, 1.6e-3), // coil outer radius R
        (1200.0, 3200.0), // coil turns N
        (600.0, 2600.0),  // coil resistance Rc
        (50.0, 900.0),    // primary winding resistance
        (800.0, 3200.0),  // primary turns
        (200.0, 1600.0),  // secondary winding resistance
        (2000.0, 7000.0), // secondary turns
    ])
}

/// Encodes a harvester configuration into the seven-gene chromosome.
pub fn encode(config: &HarvesterConfig) -> Vec<f64> {
    let booster = match &config.booster {
        BoosterConfig::Transformer(p) => *p,
        _ => TransformerBoosterParams::unoptimised(),
    };
    vec![
        config.generator.outer_radius,
        config.generator.coil_turns,
        config.generator.coil_resistance,
        booster.primary_resistance,
        booster.primary_turns,
        booster.secondary_resistance,
        booster.secondary_turns,
    ]
}

/// Decodes a chromosome into a full harvester configuration, starting from
/// `base` (which supplies everything the genes do not cover: mass, spring,
/// magnets, storage, vibration, generator model).
///
/// Physical consistency is enforced: the coil resistance is floored at the
/// minimum achievable for the requested turns and radius, and the coil
/// inductance scales with the square of the turn count.
///
/// # Panics
///
/// Panics if `genes` does not have [`GENE_COUNT`] entries.
pub fn decode(base: &HarvesterConfig, genes: &[f64]) -> HarvesterConfig {
    assert_eq!(
        genes.len(),
        GENE_COUNT,
        "chromosome must have {GENE_COUNT} genes"
    );
    let mut config = base.clone();
    // The coil must stay inside the magnet structure (the seven-section
    // coupling function requires H > 2·R), so the radius gene is clamped to
    // the geometry of the base design.
    config.generator.outer_radius = genes[Gene::CoilOuterRadius as usize]
        .min(0.49 * base.generator.magnet_height)
        .max(1.01 * base.generator.inner_radius);
    config.generator.coil_turns = genes[Gene::CoilTurns as usize];
    config.generator.coil_resistance = genes[Gene::CoilResistance as usize];
    // Physical-consistency floor: a coil with more turns in a smaller window
    // cannot have an arbitrarily small resistance.
    let floor = config.generator.minimum_coil_resistance();
    if config.generator.coil_resistance < floor {
        config.generator.coil_resistance = floor;
    }
    // Inductance scales with N².
    let base_turns = base.generator.coil_turns;
    config.generator.coil_inductance =
        base.generator.coil_inductance * (config.generator.coil_turns / base_turns).powi(2);

    let mut booster = match &base.booster {
        BoosterConfig::Transformer(p) => *p,
        _ => TransformerBoosterParams::unoptimised(),
    };
    booster.primary_resistance = genes[Gene::PrimaryResistance as usize];
    booster.primary_turns = genes[Gene::PrimaryTurns as usize];
    booster.secondary_resistance = genes[Gene::SecondaryResistance as usize];
    booster.secondary_turns = genes[Gene::SecondaryTurns as usize];
    config.booster = BoosterConfig::Transformer(booster);
    config
}

/// How thoroughly each fitness evaluation simulates the harvester.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitnessBudget {
    /// Vibration cycles simulated before the measurement window.
    pub settle_cycles: f64,
    /// Vibration cycles averaged for the charging-current measurement.
    pub measure_cycles: f64,
    /// Detailed time step in seconds.
    pub detail_dt: f64,
    /// Storage voltage at which the charging current is evaluated (the
    /// fitness is the cycle-averaged current delivered into the storage held
    /// at this voltage — proportional to the charging rate of the paper's
    /// large super-capacitor around that operating point).
    pub reference_voltage: f64,
    /// Linear-solver backend used by every fitness simulation.
    pub backend: SolverBackend,
}

impl Default for FitnessBudget {
    fn default() -> Self {
        FitnessBudget {
            settle_cycles: 40.0,
            measure_cycles: 8.0,
            detail_dt: 1e-4,
            reference_voltage: 1.0,
            backend: SolverBackend::Auto,
        }
    }
}

impl FitnessBudget {
    /// A deliberately coarse budget for unit tests and smoke runs: fewer
    /// settling cycles and a low reference voltage so that even a design that
    /// has not fully reached mechanical steady state delivers measurable
    /// charge.
    pub fn coarse() -> Self {
        FitnessBudget {
            settle_cycles: 15.0,
            measure_cycles: 4.0,
            detail_dt: 2e-4,
            reference_voltage: 0.25,
            backend: SolverBackend::Auto,
        }
    }
}

/// The simulation-backed objective of the integrated optimisation loop
/// (Fig. 8): decode the chromosome, simulate the complete coupled harvester,
/// and return the charging figure of merit.
#[derive(Debug, Clone)]
pub struct HarvesterObjective {
    base: HarvesterConfig,
    budget: FitnessBudget,
}

impl HarvesterObjective {
    /// Creates the objective around a base configuration.
    pub fn new(base: HarvesterConfig, budget: FitnessBudget) -> Self {
        HarvesterObjective { base, budget }
    }

    /// The base configuration the chromosome perturbs.
    pub fn base(&self) -> &HarvesterConfig {
        &self.base
    }

    /// The per-evaluation simulation budget.
    pub fn budget(&self) -> &FitnessBudget {
        &self.budget
    }

    /// Evaluates the charging figure of merit (average charging current in
    /// amperes into the reference-voltage storage) for a full configuration.
    pub fn charging_current(&self, config: &HarvesterConfig) -> f64 {
        let envelope = EnvelopeOptions {
            voltage_points: 2,
            max_voltage: self.budget.reference_voltage.max(1e-3),
            settle_cycles: self.budget.settle_cycles,
            measure_cycles: self.budget.measure_cycles,
            detail_dt: self.budget.detail_dt,
            horizon: 1.0,
            output_points: 2,
            backend: self.budget.backend,
        };
        let sim = EnvelopeSimulator::new(config.clone(), envelope);
        match sim.measure_characteristic() {
            Ok(characteristic) => characteristic.current_at(self.budget.reference_voltage),
            // A design whose simulation fails (e.g. a pathological corner of
            // the design space) is simply a very bad design.
            Err(_) => f64::NEG_INFINITY,
        }
    }
}

impl Objective for HarvesterObjective {
    fn evaluate(&self, genes: &[f64]) -> f64 {
        if genes.len() != GENE_COUNT {
            return f64::NEG_INFINITY;
        }
        let config = decode(&self.base, genes);
        if !config.generator.is_valid() {
            return f64::NEG_INFINITY;
        }
        self.charging_current(&config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvester_core::params::MicroGeneratorParams;

    #[test]
    fn encode_decode_roundtrip_preserves_the_paper_design() {
        let base = HarvesterConfig::unoptimised();
        let genes = encode(&base);
        assert_eq!(genes.len(), GENE_COUNT);
        assert_eq!(genes[Gene::CoilTurns as usize], 2300.0);
        assert_eq!(genes[Gene::SecondaryTurns as usize], 5000.0);
        let decoded = decode(&base, &genes);
        assert_eq!(decoded.generator.coil_turns, base.generator.coil_turns);
        assert_eq!(decoded.generator.outer_radius, base.generator.outer_radius);
        match decoded.booster {
            BoosterConfig::Transformer(p) => {
                assert_eq!(p.primary_turns, 2000.0);
                assert_eq!(p.secondary_resistance, 1000.0);
            }
            _ => panic!("decode must produce a transformer booster"),
        }
    }

    #[test]
    fn paper_designs_lie_inside_the_bounds() {
        let bounds = paper_bounds();
        for config in [
            HarvesterConfig::unoptimised(),
            HarvesterConfig::optimised_paper(),
        ] {
            let mut genes = encode(&config);
            let before = genes.clone();
            bounds.clamp(&mut genes);
            assert_eq!(genes, before, "paper design must not be clamped");
        }
    }

    #[test]
    fn decode_enforces_the_coil_resistance_floor() {
        let base = HarvesterConfig::unoptimised();
        let mut genes = encode(&base);
        genes[Gene::CoilResistance as usize] = 1.0; // absurdly low
        let decoded = decode(&base, &genes);
        assert!(
            decoded.generator.coil_resistance
                >= MicroGeneratorParams {
                    coil_resistance: 1.0,
                    ..decoded.generator
                }
                .minimum_coil_resistance()
        );
        assert!(decoded.generator.coil_resistance > 100.0);
    }

    #[test]
    fn decode_scales_inductance_with_turns() {
        let base = HarvesterConfig::unoptimised();
        let mut genes = encode(&base);
        genes[Gene::CoilTurns as usize] = 4600.0; // double the turns
        let decoded = decode(&base, &genes);
        assert!(
            (decoded.generator.coil_inductance - 4.0 * base.generator.coil_inductance).abs() < 1e-9
        );
    }

    #[test]
    fn objective_rejects_malformed_chromosomes() {
        let objective =
            HarvesterObjective::new(HarvesterConfig::unoptimised(), FitnessBudget::coarse());
        assert_eq!(objective.evaluate(&[1.0, 2.0]), f64::NEG_INFINITY);
        assert_eq!(objective.base().generator.coil_turns, 2300.0);
        assert_eq!(objective.budget().reference_voltage, 0.25);
    }

    #[test]
    fn objective_scores_the_paper_design_positively() {
        let objective =
            HarvesterObjective::new(HarvesterConfig::unoptimised(), FitnessBudget::coarse());
        let genes = encode(&HarvesterConfig::unoptimised());
        let fitness = objective.evaluate(&genes);
        assert!(
            fitness > 0.0,
            "the Table 1 design must deliver positive charging current, got {fitness}"
        );
        assert!(fitness < 1.0, "charging current should be well below 1 A");
    }

    #[test]
    #[should_panic(expected = "genes")]
    fn decode_panics_on_wrong_length() {
        let _ = decode(&HarvesterConfig::unoptimised(), &[0.0; 3]);
    }
}
