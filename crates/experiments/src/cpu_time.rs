//! Reproduction of the paper's CPU-time breakdown (§5): simulating the 100
//! chromosomes of each GA generation dominates the run time, while the GA
//! bookkeeping itself accounts for less than 3 % of the CPU time.
//!
//! The absolute seconds are hardware-dependent (the paper quotes a Pentium 4
//! running a commercial VHDL-AMS simulator); the *ratio* between simulation
//! time and optimiser overhead is the reproducible quantity.

use crate::design_space::{encode, paper_bounds, FitnessBudget, HarvesterObjective};
use crate::report::Table;
use harvester_core::system::HarvesterConfig;
use harvester_optim::{GaOptions, GeneticAlgorithm, Optimizer, ParallelEvaluator};
use std::time::Instant;

/// Options for the CPU-time split measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuTimeOptions {
    /// Number of chromosomes simulated per generation.
    pub population_size: usize,
    /// Number of GA generations measured.
    pub generations: usize,
    /// Simulation budget of each chromosome evaluation, including the
    /// solver backend ([`FitnessBudget::backend`]) every fitness transient
    /// runs on and the [`FitnessBudget::parallelism`] the chromosome batches
    /// are sharded with — the two knobs that move the simulation side of the
    /// paper's CPU-time split.
    pub fitness: FitnessBudget,
}

impl Default for CpuTimeOptions {
    fn default() -> Self {
        CpuTimeOptions {
            population_size: 100,
            generations: 2,
            fitness: FitnessBudget::coarse(),
        }
    }
}

impl CpuTimeOptions {
    /// A very small budget for unit tests.
    pub fn coarse() -> Self {
        CpuTimeOptions {
            population_size: 6,
            generations: 2,
            fitness: FitnessBudget::coarse(),
        }
    }
}

/// Measured CPU-time split between harvester simulation and GA bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuTimeBreakdown {
    /// Wall-clock seconds spent running the GA *with* the simulation-backed
    /// objective (the paper's "10 GA generations = 181 s" measurement).
    pub with_simulation_seconds: f64,
    /// Wall-clock seconds spent simulating the same number of chromosomes
    /// without any GA around them (the paper's "simulating 100 chromosomes
    /// alone takes 177 s" measurement).
    pub simulation_only_seconds: f64,
    /// Wall-clock seconds of the GA machinery alone (selection, crossover,
    /// mutation on a free objective), same population and generations.
    pub ga_only_seconds: f64,
    /// Number of objective evaluations in the simulation-only measurement.
    pub evaluations: usize,
    /// Worker threads the simulation batches were sharded over (resolved
    /// from [`FitnessBudget::parallelism`] for one population-sized batch).
    pub workers: usize,
}

impl CpuTimeBreakdown {
    /// Fraction of the total optimisation time attributable to the GA
    /// machinery (the paper reports < 3 %).
    pub fn ga_fraction(&self) -> f64 {
        if self.with_simulation_seconds <= 0.0 {
            return 0.0;
        }
        ((self.with_simulation_seconds - self.simulation_only_seconds).max(self.ga_only_seconds)
            / self.with_simulation_seconds)
            .clamp(0.0, 1.0)
    }

    /// Formats the breakdown as a report table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec!["quantity".to_string(), "value".to_string()]);
        table.push_row(vec![
            "GA + simulation [s]".to_string(),
            format!("{:.3}", self.with_simulation_seconds),
        ]);
        table.push_row(vec![
            "simulation only [s]".to_string(),
            format!("{:.3}", self.simulation_only_seconds),
        ]);
        table.push_row(vec![
            "GA machinery only [s]".to_string(),
            format!("{:.4}", self.ga_only_seconds),
        ]);
        table.push_row(vec![
            "GA fraction of CPU time".to_string(),
            format!("{:.2} %", 100.0 * self.ga_fraction()),
        ]);
        table.push_row(vec![
            "chromosome evaluations".to_string(),
            format!("{}", self.evaluations),
        ]);
        table.push_row(vec![
            "evaluator workers".to_string(),
            format!("{}", self.workers),
        ]);
        table
    }
}

/// Measures the CPU-time split for the given base design. Both measured
/// halves — the GA run and the bare chromosome batch — go through the same
/// [`ParallelEvaluator`] with per-worker simulation workspaces, so the
/// breakdown reflects the parallel engine the real optimisation loop uses.
pub fn run_cpu_split(base: &HarvesterConfig, options: &CpuTimeOptions) -> CpuTimeBreakdown {
    let bounds = paper_bounds();
    let objective = HarvesterObjective::new(base.clone(), options.fitness);
    let ga = GeneticAlgorithm::new(GaOptions {
        population_size: options.population_size,
        ..GaOptions::paper()
    });
    let evaluator = ParallelEvaluator::new(options.fitness.parallelism);
    let pooled = objective.thread_local();

    // (1) GA driving the real simulation-backed objective.
    let start = Instant::now();
    let with_sim = ga.optimise_with(&evaluator, &pooled, &bounds, options.generations, 7);
    let with_simulation_seconds = start.elapsed().as_secs_f64();

    // (2) The same number of chromosome simulations without any GA logic,
    // sharded through the same evaluator.
    let evaluations = with_sim.evaluations;
    let template = encode(base);
    let batch: Vec<Vec<f64>> = (0..evaluations)
        .map(|k| {
            // Small deterministic perturbation so the simulator cannot
            // short-circuit identical designs.
            let mut genes = template.clone();
            genes[1] += (k % 7) as f64;
            genes
        })
        .collect();
    let start = Instant::now();
    let checksum: f64 = evaluator
        .evaluate(&pooled, &batch)
        .iter()
        .map(|e| e.fitness())
        .sum();
    let simulation_only_seconds = start.elapsed().as_secs_f64();
    // The checksum only exists so the simulations cannot be elided; a failed
    // design scores -inf, which must not abort the timing experiment.
    std::hint::black_box(checksum);

    // (3) The GA machinery alone on a trivially cheap objective (kept
    // strictly serial so no thread overhead is attributed to the GA).
    let start = Instant::now();
    let _ = ga.optimise_with(
        &ParallelEvaluator::serial(),
        &|genes: &[f64]| -genes.iter().map(|g| g * g).sum::<f64>(),
        &bounds,
        options.generations,
        7,
    );
    let ga_only_seconds = start.elapsed().as_secs_f64();

    CpuTimeBreakdown {
        with_simulation_seconds,
        simulation_only_seconds,
        ga_only_seconds,
        evaluations,
        workers: options
            .fitness
            .parallelism
            .worker_count(options.population_size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ga_overhead_is_a_small_fraction_of_the_optimisation_time() {
        let breakdown = run_cpu_split(&HarvesterConfig::unoptimised(), &CpuTimeOptions::coarse());
        assert!(breakdown.with_simulation_seconds > 0.0);
        assert!(breakdown.simulation_only_seconds > 0.0);
        // At this smoke-test budget each fitness simulation is only a few
        // milliseconds — and the adaptive time stepper made it several times
        // cheaper again — so the GA bookkeeping is no longer vanishingly
        // small relative to it. The paper-scale "< 3 %" ratio is reproduced
        // by the benches at a realistic budget; this unit test only guards
        // against the bookkeeping *dominating*.
        assert!(
            breakdown.ga_fraction() < 0.5,
            "GA bookkeeping must stay a minority share even at this tiny budget, got {}",
            breakdown.ga_fraction()
        );
        assert!(breakdown.ga_only_seconds < breakdown.with_simulation_seconds);
        let table = breakdown.table().to_string();
        assert!(table.contains("GA fraction"));
    }

    #[test]
    fn zero_time_edge_case_reports_zero_fraction() {
        let b = CpuTimeBreakdown {
            with_simulation_seconds: 0.0,
            simulation_only_seconds: 0.0,
            ga_only_seconds: 0.0,
            evaluations: 0,
            workers: 1,
        };
        assert_eq!(b.ga_fraction(), 0.0);
    }
}
