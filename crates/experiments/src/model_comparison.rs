//! Reproduction of the model-comparison experiments:
//!
//! * **Figure 5** — charging of the 0.22 F super-capacitor over 150 minutes
//!   through the 6-stage Villard multiplier, simulated with the ideal-source,
//!   equivalent-circuit and analytical generator models and compared against
//!   the (synthetic) experimental measurement.
//! * **Figure 7** — generator output-voltage waveform under sine excitation:
//!   the equivalent-circuit model stays sinusoidal while the analytical model
//!   (and the measurement) distort once the coil leaves the uniform-coupling
//!   region.

use crate::report::Table;
use harvester_core::envelope::{ChargingCurve, EnvelopeOptions, EnvelopeSimulator, SteadyState};
use harvester_core::generator::GeneratorModel;
use harvester_core::reference::ExperimentalReference;
use harvester_core::system::HarvesterConfig;
use harvester_mna::transient::{SolverBackend, StepControl, TransientOptions};
use harvester_mna::MnaError;
use harvester_numerics::stats::total_harmonic_distortion;

/// Options for the Fig. 5 charging comparison.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Fig5Options {
    /// Envelope-simulation settings (horizon defaults to 150 minutes).
    pub envelope: EnvelopeOptions,
}

impl Fig5Options {
    /// A coarse budget for unit tests and smoke runs (short horizon, small
    /// storage would be configured by the caller).
    pub fn coarse() -> Self {
        Fig5Options {
            envelope: EnvelopeOptions {
                voltage_points: 4,
                max_voltage: 3.5,
                settle_cycles: 40.0,
                measure_cycles: 6.0,
                detail_dt: 2e-4,
                horizon: 600.0,
                output_points: 60,
                backend: SolverBackend::Auto,
                step_control: StepControl::adaptive_averaging(),
                steady_state: SteadyState::default(),
                ..EnvelopeOptions::default()
            },
        }
    }
}

/// One charging curve of the Fig. 5 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCurve {
    /// Label used in the report ("ideal-source", "equivalent-circuit",
    /// "analytical", "experimental").
    pub label: String,
    /// The charging curve.
    pub curve: ChargingCurve,
}

/// Result of the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// One curve per model plus the experimental reference (last entry).
    pub curves: Vec<ModelCurve>,
    /// Horizon in seconds over which the curves were generated.
    pub horizon: f64,
}

impl Fig5Result {
    /// Final voltage of the named curve, if present.
    pub fn final_voltage(&self, label: &str) -> Option<f64> {
        self.curves
            .iter()
            .find(|c| c.label == label)
            .map(|c| c.curve.final_voltage())
    }

    /// Absolute error of a model's final voltage against the experimental
    /// reference, if both are present.
    pub fn final_error_vs_experiment(&self, label: &str) -> Option<f64> {
        let experiment = self.final_voltage("experimental")?;
        let model = self.final_voltage(label)?;
        Some((model - experiment).abs())
    }

    /// Formats the curves as a table of sampled points (one row per output
    /// time, one column per model) mirroring the figure's content.
    pub fn table(&self, rows: usize) -> Table {
        let mut header = vec!["time_s".to_string()];
        header.extend(self.curves.iter().map(|c| c.label.clone()));
        let mut table = Table::new(header);
        for k in 0..rows {
            let t = self.horizon * k as f64 / (rows - 1).max(1) as f64;
            let mut row = vec![format!("{t:.1}")];
            for c in &self.curves {
                row.push(format!("{:.4}", c.curve.voltage_at(t)));
            }
            table.push_row(row);
        }
        table
    }
}

/// Runs the Fig. 5 model-comparison experiment on the given base
/// configuration (use [`HarvesterConfig::model_comparison`] with the paper's
/// 0.22 F storage for the full reproduction).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_fig5(base: &HarvesterConfig, options: &Fig5Options) -> Result<Fig5Result, MnaError> {
    let mut envelope = options.envelope;
    let horizon = envelope.horizon;
    let mut curves = Vec::new();
    for (model, label) in [
        (GeneratorModel::IdealSource, "ideal-source"),
        (GeneratorModel::EquivalentCircuit, "equivalent-circuit"),
        (GeneratorModel::Analytical, "analytical"),
    ] {
        let config = base.clone().with_model(model);
        envelope.horizon = horizon;
        let curve = EnvelopeSimulator::new(config, envelope).charge_curve()?;
        curves.push(ModelCurve {
            label: label.to_string(),
            curve,
        });
    }
    let reference = ExperimentalReference::new(base.clone());
    let curve = reference.charging_curve(envelope)?;
    curves.push(ModelCurve {
        label: "experimental".to_string(),
        curve,
    });
    Ok(Fig5Result { curves, horizon })
}

/// Options for the Fig. 7 waveform comparison.
///
/// This experiment deliberately runs on **fixed** stepping
/// ([`StepControl::Fixed`]): its THD analysis windows the recorded waveform
/// by sample count and feeds it to a harmonic estimator that assumes a
/// uniform `dt` grid, which is exactly the workload the adaptive engine's
/// README guidance lists as "stay on fixed stepping".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Options {
    /// Number of steady-state excitation periods to analyse.
    pub analysis_periods: usize,
    /// Number of start-up periods to discard.
    pub settle_periods: usize,
    /// Simulation time step.
    pub dt: f64,
    /// Linear-solver backend for the transient runs.
    pub backend: SolverBackend,
}

impl Default for Fig7Options {
    fn default() -> Self {
        Fig7Options {
            analysis_periods: 10,
            settle_periods: 20,
            dt: 4e-5,
            backend: SolverBackend::Auto,
        }
    }
}

/// One generator-output waveform of the Fig. 7 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveformCurve {
    /// Label used in the report.
    pub label: String,
    /// Sample times in seconds (steady-state window only).
    pub times: Vec<f64>,
    /// Generator output voltage at each sample.
    pub volts: Vec<f64>,
    /// Total harmonic distortion of the waveform relative to the excitation
    /// frequency.
    pub thd: f64,
}

/// Result of the Fig. 7 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// Equivalent-circuit model, analytical model and experimental waveforms.
    pub waveforms: Vec<WaveformCurve>,
}

impl Fig7Result {
    /// THD of the named waveform, if present.
    pub fn thd(&self, label: &str) -> Option<f64> {
        self.waveforms
            .iter()
            .find(|w| w.label == label)
            .map(|w| w.thd)
    }

    /// Summary table of waveform distortion (the figure's quantitative
    /// content).
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "model".to_string(),
            "thd".to_string(),
            "peak_voltage".to_string(),
        ]);
        for w in &self.waveforms {
            let peak = w.volts.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            table.push_row(vec![
                w.label.clone(),
                format!("{:.4}", w.thd),
                format!("{:.4}", peak),
            ]);
        }
        table
    }
}

/// Runs the Fig. 7 nonlinear-output experiment.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_fig7(base: &HarvesterConfig, options: &Fig7Options) -> Result<Fig7Result, MnaError> {
    let period = 1.0 / base.vibration.frequency_hz;
    let t_stop = (options.settle_periods + options.analysis_periods) as f64 * period;
    let transient = TransientOptions {
        t_stop,
        dt: options.dt,
        backend: options.backend,
        ..TransientOptions::default()
    };
    let window = (options.analysis_periods as f64 * period / options.dt).round() as usize;

    let mut waveforms = Vec::new();
    for (model, label) in [
        (GeneratorModel::EquivalentCircuit, "equivalent-circuit"),
        (GeneratorModel::Analytical, "analytical"),
    ] {
        let run = base.clone().with_model(model).simulate(transient)?;
        let times = run.times().to_vec();
        let volts = run.generator_voltage();
        let start = times.len().saturating_sub(window);
        let (times, volts) = (times[start..].to_vec(), volts[start..].to_vec());
        let thd = total_harmonic_distortion(&volts, options.dt, base.vibration.frequency_hz, 9);
        waveforms.push(WaveformCurve {
            label: label.to_string(),
            times,
            volts,
            thd,
        });
    }

    let reference = ExperimentalReference::new(base.clone());
    let (times, volts) = reference.generator_waveform(transient)?;
    let start = times.len().saturating_sub(window);
    let (times, volts) = (times[start..].to_vec(), volts[start..].to_vec());
    let thd = total_harmonic_distortion(&volts, options.dt, base.vibration.frequency_hz, 9);
    waveforms.push(WaveformCurve {
        label: "experimental".to_string(),
        times,
        volts,
        thd,
    });
    Ok(Fig7Result { waveforms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvester_core::params::StorageParams;

    fn small_storage_base() -> HarvesterConfig {
        let mut base = HarvesterConfig::model_comparison(GeneratorModel::Analytical);
        // A lighter multiplier and storage keep the unit test fast while the
        // full paper configuration is exercised by the examples and benches.
        base.booster = harvester_core::BoosterConfig::Villard(harvester_core::VillardParams {
            stages: 3,
            stage_capacitance: 2.2e-6,
            ..harvester_core::VillardParams::paper_six_stage()
        });
        base.storage = StorageParams {
            capacitance: 0.02,
            ..StorageParams::paper_supercap()
        };
        base
    }

    #[test]
    fn fig5_reproduces_the_model_ranking() {
        let result = run_fig5(&small_storage_base(), &Fig5Options::coarse()).unwrap();
        assert_eq!(result.curves.len(), 4);
        let ideal = result.final_voltage("ideal-source").unwrap();
        let analytical = result.final_voltage("analytical").unwrap();
        let experimental = result.final_voltage("experimental").unwrap();
        assert!(
            experimental > 0.05,
            "reference must charge, got {experimental}"
        );
        // The paper's headline: the ideal-source model grossly over-predicts,
        // the analytical model tracks the measurement closely.
        assert!(
            ideal > 1.5 * experimental,
            "ideal-source should over-predict: {ideal} vs {experimental}"
        );
        let err_analytical = result.final_error_vs_experiment("analytical").unwrap();
        let err_ideal = result.final_error_vs_experiment("ideal-source").unwrap();
        assert!(
            err_analytical < err_ideal,
            "analytical must be closer to the measurement ({err_analytical} vs {err_ideal})"
        );
        assert!(
            analytical > 0.5 * experimental && analytical < 2.0 * experimental,
            "analytical model must be in the right ballpark: {analytical} vs {experimental}"
        );
        // Table rendering covers every curve.
        let table = result.table(5);
        let text = table.to_string();
        assert!(text.contains("ideal-source") && text.contains("experimental"));
    }

    #[test]
    fn fig7_shows_nonlinear_distortion_only_for_the_analytical_model() {
        let base = HarvesterConfig::unoptimised();
        let options = Fig7Options {
            analysis_periods: 8,
            settle_periods: 45,
            dt: 1e-4,
            backend: Default::default(),
        };
        let result = run_fig7(&base, &options).unwrap();
        assert_eq!(result.waveforms.len(), 3);
        let thd_linear = result.thd("equivalent-circuit").unwrap();
        let thd_analytical = result.thd("analytical").unwrap();
        let thd_experimental = result.thd("experimental").unwrap();
        assert!(
            thd_analytical > 1.5 * thd_linear,
            "analytical THD {thd_analytical} must exceed linear THD {thd_linear}"
        );
        assert!(
            thd_experimental > 1.5 * thd_linear,
            "measured THD {thd_experimental} must exceed linear THD {thd_linear}"
        );
        let table = result.table().to_string();
        assert!(table.contains("thd"));
    }
}
