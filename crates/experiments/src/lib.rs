//! Reproduction harness for the evaluation section of
//! *"Integrated approach to energy harvester mixed technology modelling and
//! performance optimisation"* (Wang et al., DATE 2008).
//!
//! One module per experiment, each returning plain data structures plus a
//! formatted [`report::Table`] so the examples and benches can print the same
//! rows/series the paper reports:
//!
//! | Paper artefact | Module / entry point |
//! |---|---|
//! | Fig. 5 - model-comparison charging curves | [`model_comparison::run_fig5`] |
//! | Fig. 7 - non-sinusoidal generator output | [`model_comparison::run_fig7`] |
//! | Fig. 8 / Table 2 - integrated GA optimisation | [`optimisation::run_optimisation`] |
//! | Table 1 / Table 2 - design parameters | [`optimisation::table1`], [`optimisation::table2_paper`], [`optimisation::OptimisationOutcome::parameter_table`] |
//! | Fig. 10 - un-optimised vs optimised charging | [`optimisation::run_fig10`] |
//! | Section 5 CPU-time breakdown (GA < 3 %) | [`cpu_time::run_cpu_split`] |
//!
//! Beyond the paper's single-harvester evaluation, [`arrays`] builds
//! parameterised coupled harvester arrays (`N` detuned Villard stages on a
//! shared generator bus) — the scaling fixtures behind the matrix-free
//! shooting benchmarks.
//!
//! The seven-gene design space of the paper's chromosome lives in
//! [`design_space`], together with the simulation-backed
//! [`design_space::HarvesterObjective`] and the two-gene fitness-landscape
//! sweep [`design_space::sweep_design_space`].
//!
//! Every population-level loop (the GA's generations, the design-space
//! sweep, the CPU-split batches) shards its simulations over worker threads
//! according to [`design_space::FitnessBudget::parallelism`], with one
//! reusable simulation workspace per worker
//! ([`HarvesterObjective::thread_local`]); results are bit-identical for any
//! worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrays;
pub mod cpu_time;
pub mod design_space;
pub mod model_comparison;
pub mod optimisation;
pub mod report;

pub use arrays::{coupled_array, CoupledArray};
pub use cpu_time::{run_cpu_split, CpuTimeBreakdown, CpuTimeOptions};
pub use design_space::{
    decode, encode, paper_bounds, sweep_design_space, FitnessBudget, Gene, HarvesterObjective,
    HarvesterWorker, SweepOptions, SweepResult, GENE_COUNT,
};
pub use model_comparison::{run_fig5, run_fig7, Fig5Options, Fig5Result, Fig7Options, Fig7Result};
pub use optimisation::{
    run_fig10, run_optimisation, table1, table2_paper, Fig10Result, OptimisationOptions,
    OptimisationOutcome,
};
pub use report::Table;
