//! Coupled harvester-array fixtures: `N` Villard charge pumps driven by one
//! shared electromechanical source network.
//!
//! The paper's evaluation treats a *single* harvester; arrays of loosely
//! coupled harvesters (one generator exciting many rectifier stages through
//! a shared bus) are the natural scaling axis for the periodic-steady-state
//! machinery, because the monodromy matrix grows with the stage count while
//! each stage's physics stays identical. [`coupled_array`] builds exactly
//! that family: the unknown count grows linearly in `n` (three unknowns per
//! stage plus the shared bus and source branch), so the dense shooting
//! Jacobian grows quadratically and its column-sweep sensitivity cost
//! superlinearly — the regime the matrix-free
//! [`ShootingJacobian::MatrixFree`](harvester_mna::shooting::ShootingJacobian)
//! mode targets.
//!
//! Every stage is deterministically detuned (component spread derived from a
//! golden-ratio low-discrepancy sequence, no RNG involved) so the array is
//! not a block-diagonal repetition of one stage: the coupling resistors make
//! the stages interact through the bus voltage, and the spread keeps their
//! diode conduction windows from coinciding.

use harvester_mna::analysis::{Analysis, AnalysisPlan};
use harvester_mna::circuit::{Circuit, NodeId};
use harvester_mna::devices::{Capacitor, Diode, Resistor, VoltageSource};
use harvester_mna::shooting::SteadyStateOptions;
use harvester_mna::transient::TransientOptions;
use harvester_mna::waveform::Waveform;

/// Excitation frequency of the shared generator (Hz).
pub const ARRAY_FREQUENCY_HZ: f64 = 1_000.0;

/// A [`coupled_array`] fixture: the circuit plus the handles a measurement
/// needs.
#[derive(Debug)]
pub struct CoupledArray {
    /// The assembled circuit.
    pub circuit: Circuit,
    /// The shared generator bus node.
    pub bus: NodeId,
    /// Per-stage rectified output nodes, in stage order.
    pub outputs: Vec<NodeId>,
    /// The excitation period in seconds (shared by every stage).
    pub period: f64,
}

impl CoupledArray {
    /// Steady-state options tuned for this fixture: fixed step, 100 steps
    /// per period, one warm-up cycle (the detuned stages start from rest and
    /// the shooting updates do the settling) and a tight closure tolerance —
    /// array measurements difference per-stage outputs, so the orbit must
    /// close well below the inter-stage spread. The shooting Jacobian is
    /// left at [`Auto`](harvester_mna::shooting::ShootingJacobian::Auto);
    /// benches override it explicitly to compare the dense and matrix-free
    /// paths.
    pub fn steady_state_options(&self) -> SteadyStateOptions {
        let mut options = SteadyStateOptions::new(self.period);
        options.transient.dt = self.period / 100.0;
        options.warmup_cycles = 1.0;
        options.tolerance = 1e-9;
        options
    }

    /// Transient options of the fixture's settling study: five excitation
    /// periods at the golden-suite step — the workload
    /// `tests/netlist_golden.rs` pins bit-identically against the shipped
    /// `coupled_array4.cir`.
    pub fn transient_options(&self) -> TransientOptions {
        TransientOptions {
            dt: 2e-5,
            t_stop: 5.0 * self.period,
            ..TransientOptions::default()
        }
    }

    /// The fixture's canonical [`AnalysisPlan`]: the settling transient
    /// ([`CoupledArray::transient_options`]) followed by the shooting
    /// periodic steady state ([`CoupledArray::steady_state_options`]).
    /// [`coupled_array_netlist`] renders the same plan as `.tran`/`.pss`
    /// cards, so the shipped fixture runs the identical study end-to-end
    /// from text.
    pub fn analysis_plan(&self) -> AnalysisPlan {
        AnalysisPlan::from_cards(vec![
            Analysis::Tran(self.transient_options()),
            Analysis::Pss(self.steady_state_options()),
        ])
        .expect("fixture analysis options are valid by construction")
    }
}

/// Deterministic per-stage detuning factor in `[0.9, 1.1)`: the fractional
/// part of `k·φ` (golden-ratio sequence) is low-discrepancy, so any prefix
/// of stages spreads evenly over the band instead of clustering.
fn detune(stage: usize, salt: usize) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_9;
    let u = ((stage * 3 + salt + 1) as f64 * PHI).fract();
    0.9 + 0.2 * u
}

/// Builds an `n`-stage coupled harvester array.
///
/// Topology: a sinusoidal generator (amplitude 2.5 V at
/// [`ARRAY_FREQUENCY_HZ`]) with an internal source resistance feeds a shared
/// `bus` node. Each stage hangs off the bus through its own coupling
/// resistor and is a single-stage Villard charge pump: a series pump
/// capacitor into a diode clamp, a series diode into the stage's storage
/// capacitor, and a load resistor across the storage capacitor. Component
/// values carry a deterministic ±10 % spread (see module docs).
///
/// The returned system has `3·n + 2` unknowns (`in`, `pump`, `out` per
/// stage, the bus voltage and the generator branch current).
///
/// # Panics
///
/// Panics if `n` is zero — an array needs at least one stage.
pub fn coupled_array(n: usize) -> CoupledArray {
    assert!(n > 0, "a coupled array needs at least one stage");
    let mut circuit = Circuit::new();
    // Stage nodes are numbered before the shared gen/bus pair on purpose:
    // the sparse LU eliminates unknowns in numbering order, and the bus
    // couples to every stage, so eliminating it early would fill the whole
    // matrix (arrowhead pointing the wrong way). Numbered last, the
    // per-stage blocks eliminate with local fill and the coupling entries
    // only densify the two final rows/columns.
    let stage_nodes: Vec<(NodeId, NodeId, NodeId)> = (0..n)
        .map(|stage| {
            (
                circuit.node(&format!("in{stage}")),
                circuit.node(&format!("pump{stage}")),
                circuit.node(&format!("out{stage}")),
            )
        })
        .collect();
    let source = circuit.node("gen");
    let bus = circuit.node("bus");
    circuit.add(VoltageSource::new(
        "Vgen",
        source,
        Circuit::GROUND,
        Waveform::sine(2.5, ARRAY_FREQUENCY_HZ),
    ));
    // The generator's internal (mechanical damping) resistance: the shared
    // impedance through which the stages load each other.
    circuit.add(Resistor::new("Rgen", source, bus, 25.0));

    let mut outputs = Vec::with_capacity(n);
    for (stage, &(input, pump, out)) in stage_nodes.iter().enumerate() {
        circuit.add(Resistor::new(
            &format!("Rc{stage}"),
            bus,
            input,
            50.0 * detune(stage, 0),
        ));
        circuit.add(Capacitor::new(
            &format!("Cp{stage}"),
            input,
            pump,
            1e-7 * detune(stage, 1),
        ));
        circuit.add(Diode::new(&format!("Dc{stage}"), Circuit::GROUND, pump));
        circuit.add(Diode::new(&format!("Ds{stage}"), pump, out));
        circuit.add(Capacitor::new(
            &format!("Cs{stage}"),
            out,
            Circuit::GROUND,
            4.7e-7 * detune(stage, 2),
        ));
        circuit.add(Resistor::new(
            &format!("Rl{stage}"),
            out,
            Circuit::GROUND,
            47e3 * detune(stage, 0),
        ));
        outputs.push(out);
    }

    CoupledArray {
        circuit,
        bus,
        outputs,
        period: 1.0 / ARRAY_FREQUENCY_HZ,
    }
}

/// Renders the [`coupled_array`] fixture as netlist text whose
/// [`harvester_mna::netlist::build`] output is **bit-identical** to the
/// hardcoded builder: same node numbering (pinned by a `.nodes` card in the
/// same stage-before-bus order), same device order, and every detuned
/// component value written with `{:?}` (Rust's shortest round-trip float
/// format) so it re-parses to the same bits.
///
/// One stage is declared once as a `.subckt` and instantiated `n` times with
/// per-stage parameter overrides — the netlist-front-end counterpart of the
/// builder's `for` loop. Device *names* differ (`x0.Rc` vs `Rc0`): names
/// never enter the numerics, only probes.
///
/// # Panics
///
/// Panics if `n` is zero — an array needs at least one stage.
pub fn coupled_array_netlist(n: usize) -> String {
    use std::fmt::Write as _;
    assert!(n > 0, "a coupled array needs at least one stage");
    let mut s = String::new();
    s.push_str("* coupled harvester array: n Villard stages sharing one generator bus\n");
    s.push_str("* (generated by harvester_experiments::arrays::coupled_array_netlist)\n");
    // Same stage-before-bus numbering as the builder: the sparse LU
    // eliminates per-stage blocks with local fill and densifies only the
    // final gen/bus rows.
    s.push_str(".nodes");
    for stage in 0..n {
        write!(s, " in{stage} pump{stage} out{stage}").unwrap();
    }
    s.push_str(" gen bus\n");
    s.push_str(".subckt stage bus in pump out rc=50 cp=1e-7 cs=4.7e-7 rl=47k\n");
    s.push_str("Rc bus in {rc}\n");
    s.push_str("Cp in pump {cp}\n");
    s.push_str("Dc 0 pump\n");
    s.push_str("Ds pump out\n");
    s.push_str("Cs out 0 {cs}\n");
    s.push_str("Rl out 0 {rl}\n");
    s.push_str(".ends\n");
    writeln!(s, "Vgen gen 0 SIN(0 2.5 {ARRAY_FREQUENCY_HZ:?})").unwrap();
    s.push_str("Rgen gen bus 25\n");
    for stage in 0..n {
        writeln!(
            s,
            "x{stage} bus in{stage} pump{stage} out{stage} stage rc={:?} cp={:?} cs={:?} rl={:?}",
            50.0 * detune(stage, 0),
            1e-7 * detune(stage, 1),
            4.7e-7 * detune(stage, 2),
            47e3 * detune(stage, 0),
        )
        .unwrap();
    }
    // The fixture's canonical study as analysis cards, rendered through the
    // same printer `netlist::print_with_plan` uses so the text stays the
    // exact inverse of the plan. Taking the plan from `coupled_array(n)`
    // itself (not re-deriving the option arithmetic here) keeps every value
    // bit-identical to the builder's.
    let plan = coupled_array(n).analysis_plan();
    s.push_str(
        &harvester_mna::netlist::print_plan(&plan)
            .expect("fixture analysis cards are representable"),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvester_mna::shooting::{ShootingJacobian, SteadyStateAnalysis};

    #[test]
    fn stage_count_scales_the_unknowns_linearly() {
        for n in [1, 4, 9] {
            let array = coupled_array(n);
            // Ground plus 3 nodes per stage plus generator and bus.
            assert_eq!(array.circuit.node_count(), 3 * n + 3);
            assert_eq!(array.outputs.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_are_refused() {
        coupled_array(0);
    }

    #[test]
    fn detuning_is_deterministic_and_bounded() {
        for stage in 0..64 {
            for salt in 0..3 {
                let d = detune(stage, salt);
                assert!((0.9..1.1).contains(&d), "detune({stage},{salt}) = {d}");
                assert_eq!(d, detune(stage, salt));
            }
        }
        // Neighbouring stages must not share a spread (the whole point of
        // the low-discrepancy sequence).
        assert_ne!(detune(0, 0), detune(1, 0));
    }

    #[test]
    fn netlist_rendering_reproduces_the_builder_exactly() {
        use harvester_mna::devices::{Capacitor, Resistor, VoltageSource};
        for n in [1, 4] {
            let built = coupled_array(n).circuit;
            let parsed = harvester_mna::netlist::build(&coupled_array_netlist(n))
                .expect("generated netlist must elaborate");
            assert_eq!(parsed.node_names(), built.node_names());
            assert_eq!(parsed.device_count(), built.device_count());
            // Values must survive the text round trip bit-for-bit; device
            // names differ (subckt scoping), so compare the typed payloads.
            for (a, b) in built.devices().iter().zip(parsed.devices()) {
                let (a, b) = (a.as_any().unwrap(), b.as_any().unwrap());
                if let Some(r) = a.downcast_ref::<Resistor>() {
                    let r2 = b.downcast_ref::<Resistor>().unwrap();
                    assert_eq!(r.resistance().to_bits(), r2.resistance().to_bits());
                    assert_eq!(r.terminals(), r2.terminals());
                } else if let Some(c) = a.downcast_ref::<Capacitor>() {
                    let c2 = b.downcast_ref::<Capacitor>().unwrap();
                    assert_eq!(c.capacitance().to_bits(), c2.capacitance().to_bits());
                    assert_eq!(c.terminals(), c2.terminals());
                } else if let Some(v) = a.downcast_ref::<VoltageSource>() {
                    let v2 = b.downcast_ref::<VoltageSource>().unwrap();
                    assert_eq!(v.waveform(), v2.waveform());
                    assert_eq!(v.terminals(), v2.terminals());
                } else if let Some(d) = a.downcast_ref::<Diode>() {
                    let d2 = b.downcast_ref::<Diode>().unwrap();
                    assert_eq!(d.saturation_current(), d2.saturation_current());
                    assert_eq!(d.terminals(), d2.terminals());
                } else {
                    panic!("unexpected device kind in the array fixture");
                }
            }
        }
    }

    #[test]
    fn small_array_reaches_a_periodic_steady_state_on_both_jacobians() {
        let array = coupled_array(4);
        let mut reference = None;
        for jacobian in [ShootingJacobian::Dense, ShootingJacobian::matrix_free()] {
            let mut options = array.steady_state_options();
            options.jacobian = jacobian;
            let pss = SteadyStateAnalysis::new(options)
                .run(&array.circuit)
                .expect("coupled array must simulate");
            assert!(pss.converged, "{jacobian:?} closure {}", pss.closure_error);
            // Every stage must actually rectify: positive mean output.
            for &out in &array.outputs {
                let samples = pss.result.voltage(out);
                let mean = samples.iter().sum::<f64>() / samples.len() as f64;
                assert!(mean > 0.1, "stage output must charge, got mean {mean}");
            }
            let closing: Vec<f64> = array
                .outputs
                .iter()
                .map(|&out| pss.result.voltage(out)[0])
                .collect();
            match &reference {
                None => reference = Some(closing),
                Some(dense) => {
                    for (a, b) in dense.iter().zip(&closing) {
                        assert!(
                            (a - b).abs() < 1e-6,
                            "jacobian modes must agree on the orbit: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}
