//! The integrated optimisation experiments: the GA loop of Fig. 8, the
//! parameter tables (Tables 1 and 2) and the optimised-vs-un-optimised
//! charging comparison of Fig. 10.

use crate::design_space::{decode, encode, paper_bounds, FitnessBudget, HarvesterObjective};
use crate::report::Table;
use harvester_core::booster::BoosterConfig;
use harvester_core::envelope::{ChargingCurve, EnvelopeOptions, EnvelopeSimulator};
use harvester_core::metrics::improvement_percent;
use harvester_core::system::HarvesterConfig;
use harvester_mna::transient::TransientOptions;
use harvester_mna::MnaError;
use harvester_optim::{
    GaOptions, GeneticAlgorithm, OptimisationResult, Optimizer, ParallelEvaluator,
};

/// Options for the integrated optimisation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimisationOptions {
    /// Genetic-algorithm settings (defaults to the paper's settings).
    pub ga: GaOptions,
    /// Number of GA generations to run.
    pub generations: usize,
    /// RNG seed (the experiment is deterministic per seed).
    pub seed: u64,
    /// Simulation budget of each fitness evaluation, including the
    /// [`FitnessBudget::parallelism`] policy the GA's generations are
    /// sharded with (worker count never affects the result bits, only the
    /// wall-clock time).
    pub fitness: FitnessBudget,
}

impl Default for OptimisationOptions {
    fn default() -> Self {
        OptimisationOptions {
            ga: GaOptions::paper(),
            generations: 40,
            seed: 2008,
            fitness: FitnessBudget::default(),
        }
    }
}

impl OptimisationOptions {
    /// A deliberately small budget for unit tests and smoke runs.
    pub fn coarse() -> Self {
        OptimisationOptions {
            ga: GaOptions {
                population_size: 10,
                ..GaOptions::paper()
            },
            generations: 4,
            seed: 2008,
            fitness: FitnessBudget::coarse(),
        }
    }
}

/// Outcome of the integrated optimisation loop.
#[derive(Debug, Clone)]
pub struct OptimisationOutcome {
    /// The starting (Table 1) configuration.
    pub unoptimised: HarvesterConfig,
    /// The configuration found by the optimiser.
    pub optimised: HarvesterConfig,
    /// Fitness (average charging current in amperes at the reference storage
    /// voltage) of the starting design.
    pub unoptimised_fitness: f64,
    /// Fitness of the optimised design.
    pub optimised_fitness: f64,
    /// The raw optimiser trace.
    pub ga_result: OptimisationResult,
}

impl OptimisationOutcome {
    /// Relative improvement of the charging figure of merit, in percent.
    pub fn fitness_improvement_percent(&self) -> f64 {
        improvement_percent(self.unoptimised_fitness, self.optimised_fitness)
    }

    /// Formats the un-optimised and optimised designs side by side, mirroring
    /// the layout of the paper's Tables 1 and 2.
    pub fn parameter_table(&self) -> Table {
        let mut table = Table::new(vec![
            "parameter".to_string(),
            "un-optimised (Table 1)".to_string(),
            "optimised (this run)".to_string(),
            "optimised (paper Table 2)".to_string(),
        ]);
        let paper = HarvesterConfig::optimised_paper();
        type ColumnFormatter = Box<dyn Fn(&HarvesterConfig) -> String>;
        let rows: Vec<(&str, ColumnFormatter)> = vec![
            (
                "coil outer radius R [mm]",
                Box::new(|c: &HarvesterConfig| format!("{:.2}", c.generator.outer_radius * 1e3)),
            ),
            (
                "coil turns N",
                Box::new(|c: &HarvesterConfig| format!("{:.0}", c.generator.coil_turns)),
            ),
            (
                "coil resistance Rc [ohm]",
                Box::new(|c: &HarvesterConfig| format!("{:.0}", c.generator.coil_resistance)),
            ),
            (
                "primary winding resistance [ohm]",
                Box::new(|c: &HarvesterConfig| format!("{:.0}", transformer(c).primary_resistance)),
            ),
            (
                "primary turns",
                Box::new(|c: &HarvesterConfig| format!("{:.0}", transformer(c).primary_turns)),
            ),
            (
                "secondary winding resistance [ohm]",
                Box::new(|c: &HarvesterConfig| {
                    format!("{:.0}", transformer(c).secondary_resistance)
                }),
            ),
            (
                "secondary turns",
                Box::new(|c: &HarvesterConfig| format!("{:.0}", transformer(c).secondary_turns)),
            ),
        ];
        for (name, extract) in rows {
            table.push_row(vec![
                name.to_string(),
                extract(&self.unoptimised),
                extract(&self.optimised),
                extract(&paper),
            ]);
        }
        table
    }
}

fn transformer(config: &HarvesterConfig) -> harvester_core::params::TransformerBoosterParams {
    match &config.booster {
        BoosterConfig::Transformer(p) => *p,
        _ => harvester_core::params::TransformerBoosterParams::unoptimised(),
    }
}

/// Runs the integrated optimisation loop of Fig. 8: GA over the seven-gene
/// design space with the coupled-simulation objective.
///
/// Each generation's chromosomes are simulated in parallel according to
/// [`FitnessBudget::parallelism`], with one reusable simulation workspace
/// per worker; the outcome is bit-identical for any worker count.
pub fn run_optimisation(
    base: &HarvesterConfig,
    options: &OptimisationOptions,
) -> OptimisationOutcome {
    let objective = HarvesterObjective::new(base.clone(), options.fitness);
    let bounds = paper_bounds();
    let ga = GeneticAlgorithm::new(options.ga);
    let evaluator = ParallelEvaluator::new(options.fitness.parallelism);
    let pooled = objective.thread_local();
    let ga_result = ga.optimise_with(
        &evaluator,
        &pooled,
        &bounds,
        options.generations,
        options.seed,
    );

    let unoptimised_fitness = objective.charging_current(base);
    let optimised = decode(base, &ga_result.best_genes);
    let optimised_fitness = ga_result.best_fitness;
    OptimisationOutcome {
        unoptimised: base.clone(),
        optimised,
        unoptimised_fitness,
        optimised_fitness,
        ga_result,
    }
}

/// The paper's Table 1 as a formatted table (starting design).
pub fn table1() -> Table {
    design_table("un-optimised (Table 1)", &HarvesterConfig::unoptimised())
}

/// The paper's Table 2 as a formatted table (the authors' optimised design).
pub fn table2_paper() -> Table {
    design_table(
        "optimised (paper Table 2)",
        &HarvesterConfig::optimised_paper(),
    )
}

fn design_table(label: &str, config: &HarvesterConfig) -> Table {
    let mut table = Table::new(vec!["parameter".to_string(), label.to_string()]);
    let genes = encode(config);
    let names = [
        "coil outer radius R [m]",
        "coil turns N",
        "coil resistance Rc [ohm]",
        "primary winding resistance [ohm]",
        "primary turns",
        "secondary winding resistance [ohm]",
        "secondary turns",
    ];
    for (name, value) in names.iter().zip(genes.iter()) {
        table.push_row(vec![name.to_string(), format!("{value:.4}")]);
    }
    table
}

/// Result of the Fig. 10 charging comparison.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Charging curve of the un-optimised (Table 1) design.
    pub unoptimised: ChargingCurve,
    /// Charging curve of the optimised design.
    pub optimised: ChargingCurve,
    /// Horizon in seconds.
    pub horizon: f64,
    /// Efficiency loss (Eq. 9) of the un-optimised design over a short
    /// detailed run.
    pub unoptimised_efficiency_loss: f64,
    /// Efficiency loss (Eq. 9) of the optimised design over a short detailed
    /// run.
    pub optimised_efficiency_loss: f64,
}

impl Fig10Result {
    /// Final storage voltage of the un-optimised design (the paper reports
    /// 1.5 V at 150 minutes).
    pub fn unoptimised_final_voltage(&self) -> f64 {
        self.unoptimised.final_voltage()
    }

    /// Final storage voltage of the optimised design (the paper reports
    /// 1.95 V at 150 minutes).
    pub fn optimised_final_voltage(&self) -> f64 {
        self.optimised.final_voltage()
    }

    /// Relative improvement of the final storage voltage in percent (the
    /// paper's 30 % headline).
    pub fn improvement_percent(&self) -> f64 {
        improvement_percent(
            self.unoptimised_final_voltage(),
            self.optimised_final_voltage(),
        )
    }

    /// Formats both charging curves as a table (one row per sample time).
    pub fn table(&self, rows: usize) -> Table {
        let mut table = Table::new(vec![
            "time_s".to_string(),
            "un-optimised_V".to_string(),
            "optimised_V".to_string(),
        ]);
        for k in 0..rows {
            let t = self.horizon * k as f64 / (rows - 1).max(1) as f64;
            table.push_row(vec![
                format!("{t:.1}"),
                format!("{:.4}", self.unoptimised.voltage_at(t)),
                format!("{:.4}", self.optimised.voltage_at(t)),
            ]);
        }
        table
    }
}

/// Runs the Fig. 10 comparison: long-horizon charging of the un-optimised and
/// optimised designs plus the Eq. (9) efficiency-loss numbers.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_fig10(
    unoptimised: &HarvesterConfig,
    optimised: &HarvesterConfig,
    envelope: EnvelopeOptions,
) -> Result<Fig10Result, MnaError> {
    let unopt_curve = EnvelopeSimulator::new(unoptimised.clone(), envelope).charge_curve()?;
    let opt_curve = EnvelopeSimulator::new(optimised.clone(), envelope).charge_curve()?;

    // Short detailed runs with a reduced storage capacitor give the Eq. (9)
    // energy bookkeeping without the 150-minute horizon.
    let loss = |config: &HarvesterConfig| -> Result<f64, MnaError> {
        let mut small = config.clone();
        small.storage.capacitance = 100e-6;
        let run = small.simulate(TransientOptions {
            t_stop: 1.0,
            dt: 1e-4,
            record_interval: Some(1e-3),
            backend: envelope.backend,
            ..TransientOptions::default()
        })?;
        Ok(run.efficiency_loss())
    };
    Ok(Fig10Result {
        unoptimised: unopt_curve,
        optimised: opt_curve,
        horizon: envelope.horizon,
        unoptimised_efficiency_loss: loss(unoptimised)?,
        optimised_efficiency_loss: loss(optimised)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvester_core::params::StorageParams;

    #[test]
    fn table_formatters_contain_the_paper_values() {
        let t1 = table1().to_string();
        assert!(t1.contains("2300"));
        assert!(t1.contains("1600"));
        let t2 = table2_paper().to_string();
        assert!(t2.contains("2100"));
        assert!(t2.contains("1400"));
        assert!(t2.contains("3800"));
    }

    #[test]
    fn coarse_optimisation_improves_the_charging_figure_of_merit() {
        let base = HarvesterConfig::unoptimised();
        let outcome = run_optimisation(&base, &OptimisationOptions::coarse());
        assert!(outcome.unoptimised_fitness > 0.0);
        assert!(
            outcome.optimised_fitness >= outcome.unoptimised_fitness,
            "GA must not make the design worse: {} vs {}",
            outcome.optimised_fitness,
            outcome.unoptimised_fitness
        );
        assert!(outcome.fitness_improvement_percent() >= 0.0);
        // The optimised design must remain physically valid and inside bounds.
        assert!(outcome.optimised.generator.is_valid());
        let table = outcome.parameter_table().to_string();
        assert!(table.contains("coil turns N"));
        assert!(table.contains("secondary turns"));
    }

    #[test]
    fn fig10_comparison_ranks_a_lower_loss_design_above_the_baseline() {
        // Use a design that is unambiguously better under any physics (same
        // transformer ratio, strictly lower winding losses) as the
        // "optimised" configuration so this unit test does not depend on a GA
        // run; the GA-found design is exercised by the examples and benches.
        let mut unopt = HarvesterConfig::unoptimised();
        let mut opt = HarvesterConfig::unoptimised();
        opt.booster =
            BoosterConfig::Transformer(harvester_core::params::TransformerBoosterParams {
                primary_resistance: 150.0,
                secondary_resistance: 400.0,
                ..harvester_core::params::TransformerBoosterParams::unoptimised()
            });
        opt.generator.coil_resistance = 1100.0;
        for cfg in [&mut unopt, &mut opt] {
            cfg.storage = StorageParams {
                capacitance: 0.02,
                ..StorageParams::paper_supercap()
            };
        }
        let envelope = EnvelopeOptions {
            voltage_points: 4,
            max_voltage: 3.5,
            settle_cycles: 15.0,
            measure_cycles: 5.0,
            detail_dt: 2e-4,
            horizon: 600.0,
            output_points: 50,
            backend: Default::default(),
            step_control: harvester_core::StepControl::adaptive_averaging(),
            steady_state: Default::default(),
            ..EnvelopeOptions::default()
        };
        let result = run_fig10(&unopt, &opt, envelope).unwrap();
        assert!(result.unoptimised_final_voltage() > 0.05);
        assert!(
            result.optimised_final_voltage() > result.unoptimised_final_voltage(),
            "the paper's optimised design must charge faster: {} vs {}",
            result.optimised_final_voltage(),
            result.unoptimised_final_voltage()
        );
        assert!(result.improvement_percent() > 0.0);
        assert!((0.0..=1.0).contains(&result.unoptimised_efficiency_loss));
        assert!((0.0..=1.0).contains(&result.optimised_efficiency_loss));
        let table = result.table(4).to_string();
        assert!(table.contains("un-optimised_V"));
    }
}
