//! Small plain-text reporting helpers (ASCII tables and CSV) used by the
//! experiment binaries and benches to print the rows/series the paper
//! reports.

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row length must match the header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (cell, w) in cells.iter().zip(widths.iter()) {
                write!(f, "| {cell:<w$} ")?;
            }
            writeln!(f, "|")
        };
        write_row(f, &self.header)?;
        for (w, _) in widths.iter().zip(self.header.iter()) {
            write!(f, "|{:-<width$}", "", width = w + 2)?;
        }
        writeln!(f, "|")?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text_and_csv() {
        let mut t = Table::new(vec!["name".to_string(), "value".to_string()]);
        t.push_row(vec!["alpha".to_string(), "1".to_string()]);
        t.push_row(vec!["b".to_string(), "22.5".to_string()]);
        assert_eq!(t.row_count(), 2);
        let text = t.to_string();
        assert!(text.contains("| name  | value |"));
        assert!(text.contains("| alpha | 1     |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("b,22.5\n"));
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(vec!["a".to_string()]);
        t.push_row(vec!["1".to_string(), "2".to_string()]);
    }
}
