//! Property tests for the sparse solver stack: the sparse path must agree
//! with the dense path on every well-conditioned system, round-trip its
//! storage formats, and fail loudly (never with NaNs) on singular input.

use harvester_numerics::linalg::Matrix;
use harvester_numerics::sparse::SparseMatrix;
use harvester_numerics::NumericsError;
use proptest::prelude::*;

const MAX_N: usize = 13;

/// Builds a random sparse, strictly diagonally dominant (hence
/// well-conditioned and nonsingular) system from a pool of uniform values.
fn diagonally_dominant(n: usize, pool: &[f64]) -> Vec<(usize, usize, f64)> {
    let mut triplets = Vec::new();
    let mut cursor = 0usize;
    let mut next = |lo: f64, hi: f64| {
        let u = (pool[cursor % pool.len()] + 1.0) / 2.0; // pool is in [-1, 1)
        cursor += 1;
        lo + u * (hi - lo)
    };
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j && next(0.0, 1.0) < 0.35 {
                let v = next(-1.0, 1.0);
                triplets.push((i, j, v));
                row_sum += v.abs();
            }
        }
        triplets.push((i, i, row_sum + 0.5 + next(0.0, 1.0)));
    }
    triplets
}

fn dense_of(triplets: &[(usize, usize, f64)], n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for &(r, c, v) in triplets {
        m[(r, c)] += v;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sparse LU and dense LU agree within 1e-9 on random well-conditioned
    /// systems.
    #[test]
    fn sparse_lu_agrees_with_dense_lu(
        n in 2usize..MAX_N,
        pool in proptest::collection::vec(-1.0f64..1.0, 4 * MAX_N * MAX_N),
        rhs in proptest::collection::vec(-5.0f64..5.0, MAX_N),
    ) {
        let triplets = diagonally_dominant(n, &pool);
        let sparse = SparseMatrix::from_triplets(n, n, &triplets);
        let dense = dense_of(&triplets, n);
        let b = &rhs[..n];
        let xs = sparse.solve(b).expect("diagonally dominant systems factor");
        let xd = dense.solve(b).expect("diagonally dominant systems factor");
        for (s, d) in xs.iter().zip(xd.iter()) {
            prop_assert!(s.is_finite());
            prop_assert!(
                (s - d).abs() <= 1e-9 * (1.0 + d.abs()),
                "sparse {s} vs dense {d} (n = {n})"
            );
        }
    }

    /// COO → CSR → dense round-trips exactly (duplicates coalesce to the sum
    /// the dense accumulation produces, modulo floating-point ordering).
    #[test]
    fn coo_csr_dense_roundtrip(
        n in 1usize..MAX_N,
        pool in proptest::collection::vec(-1.0f64..1.0, 4 * MAX_N * MAX_N),
        duplicates in 0usize..20,
    ) {
        let mut triplets = diagonally_dominant(n, &pool);
        // Duplicate a few existing coordinates so coalescing is exercised.
        for k in 0..duplicates {
            let (r, c, v) = triplets[k % triplets.len()];
            triplets.push((r, c, 0.5 * v));
        }
        let sparse = SparseMatrix::from_triplets(n, n, &triplets);
        let dense = dense_of(&triplets, n);
        let roundtrip = sparse.to_dense();
        for i in 0..n {
            for j in 0..n {
                prop_assert!(
                    (roundtrip[(i, j)] - dense[(i, j)]).abs() <= 1e-12,
                    "entry ({i}, {j}): {} vs {}",
                    roundtrip[(i, j)],
                    dense[(i, j)]
                );
            }
        }
        // And CSR → dense → CSR preserves the stored values.
        let back = SparseMatrix::from_dense(&roundtrip);
        prop_assert!(back.nnz() <= sparse.nnz());
        for (r, c, v) in back.entries() {
            prop_assert!((sparse.get(r, c) - v).abs() <= 1e-12);
        }
    }

    /// Singular matrices are reported as `NumericsError::SingularMatrix` by
    /// both paths — never silently as NaN solutions.
    #[test]
    fn singular_systems_error_on_both_paths(
        n in 2usize..MAX_N,
        pool in proptest::collection::vec(-1.0f64..1.0, 4 * MAX_N * MAX_N),
        dup_from in 0usize..MAX_N,
        dup_to in 0usize..MAX_N,
    ) {
        let src = dup_from % n;
        let dst = (dup_to % (n - 1) + src + 1) % n; // distinct from src
        prop_assume!(src != dst);
        let base = diagonally_dominant(n, &pool);
        // Overwrite row `dst` with an exact copy of row `src`: rank < n.
        let mut triplets: Vec<(usize, usize, f64)> = base
            .iter()
            .copied()
            .filter(|&(r, _, _)| r != dst)
            .collect();
        let copied: Vec<(usize, usize, f64)> = base
            .iter()
            .copied()
            .filter(|&(r, _, _)| r == src)
            .map(|(_, c, v)| (dst, c, v))
            .collect();
        triplets.extend(copied);
        let sparse = SparseMatrix::from_triplets(n, n, &triplets);
        let dense = dense_of(&triplets, n);
        let b = vec![1.0; n];
        let sparse_err = sparse.solve(&b);
        let dense_err = dense.solve(&b);
        prop_assert!(
            matches!(sparse_err, Err(NumericsError::SingularMatrix { .. })),
            "sparse path must detect singularity, got {sparse_err:?}"
        );
        prop_assert!(
            matches!(dense_err, Err(NumericsError::SingularMatrix { .. })),
            "dense path must detect singularity, got {dense_err:?}"
        );
    }

    /// Pattern-reusing refactorisation agrees with a from-scratch
    /// factorisation of the new values.
    #[test]
    fn refactor_agrees_with_fresh_factorisation(
        n in 2usize..MAX_N,
        pool in proptest::collection::vec(-1.0f64..1.0, 4 * MAX_N * MAX_N),
        scale in 0.25f64..4.0,
        rhs in proptest::collection::vec(-5.0f64..5.0, MAX_N),
    ) {
        let triplets = diagonally_dominant(n, &pool);
        let mut sparse = SparseMatrix::from_triplets(n, n, &triplets);
        let mut lu = sparse.lu().expect("first factorisation succeeds");
        // New values on the identical pattern (scaling preserves diagonal
        // dominance, so the stored pivot order stays numerically valid).
        sparse.fill_zero();
        for &(r, c, v) in &triplets {
            sparse.add_at(r, c, scale * v);
        }
        lu.refactor(&sparse).expect("refactorisation succeeds");
        let b = &rhs[..n];
        let x_re = lu.solve(b).unwrap();
        let x_fresh = sparse.to_dense().solve(b).unwrap();
        for (r, f) in x_re.iter().zip(x_fresh.iter()) {
            prop_assert!(
                (r - f).abs() <= 1e-9 * (1.0 + f.abs()),
                "refactor {r} vs fresh {f}"
            );
        }
    }
}
