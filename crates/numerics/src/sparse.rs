//! Sparse matrices (COO triplet assembly → CSR) and a fill-pattern-reusing
//! sparse LU factorisation.
//!
//! Modified nodal analysis produces Jacobians whose **sparsity pattern is
//! fixed per circuit**: every Newton iteration and every time step stamps the
//! same `(row, col)` positions, only the values change. [`SparseLu`] exploits
//! this the same way production circuit simulators (KLU, Sparse 1.3) do:
//!
//! 1. The **first** factorisation performs partial pivoting and records the
//!    row permutation, the merged L/U fill pattern and a scatter map from the
//!    matrix's CSR entries into the factor storage.
//! 2. Every **subsequent** factorisation ([`SparseLu::refactor`]) reuses that
//!    symbolic analysis: values are scattered into the fixed pattern and
//!    eliminated along the stored pivot order with no searching, no
//!    allocation and no pattern bookkeeping.
//!
//! If a reused pivot order goes numerically stale (a stored pivot becomes
//! tiny), [`SparseLu::update`] falls back to a fresh fully-pivoted
//! factorisation transparently.

use crate::linalg::Matrix;
use crate::NumericsError;

/// Relative pivot-breakdown threshold, matching the dense LU in
/// [`crate::linalg`].
const PIVOT_RTOL: f64 = 1e-14;

/// Largest absolute entry of each column (floored at `f64::MIN_POSITIVE` so
/// a structurally empty column still reads as singular rather than dividing
/// by zero). Pivot breakdown is judged against the pivot column's own scale:
/// MNA matrices mix 1/dt-scaled companion conductances with unit-scale
/// branch equations, and a global threshold would misdiagnose the well-posed
/// small-scale columns as singular at small time steps.
fn column_scales(a: &SparseMatrix) -> Vec<f64> {
    let mut scales = Vec::new();
    refill_column_scales(a, &mut scales);
    scales
}

/// In-place variant of [`column_scales`] for the allocation-free
/// `refactor` hot path.
fn refill_column_scales(a: &SparseMatrix, scales: &mut Vec<f64>) {
    scales.clear();
    scales.resize(a.cols, f64::MIN_POSITIVE);
    for (k, &v) in a.values.iter().enumerate() {
        let c = a.col_idx[k];
        let v = v.abs();
        if v > scales[c] {
            scales[c] = v;
        }
    }
}

/// Triplet (COO) accumulator used to assemble a [`SparseMatrix`].
///
/// Duplicate coordinates are allowed and are **summed** during conversion to
/// CSR — exactly the semantics MNA stamping needs. Explicitly pushed zeros
/// are kept, so a zero-valued triplet reserves a slot in the sparsity
/// pattern.
///
/// # Example
///
/// ```
/// # use harvester_numerics::sparse::TripletMatrix;
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 1.0); // duplicates accumulate
/// t.push(1, 1, 3.0);
/// let csr = t.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.get(0, 0), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows × cols` triplet accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        TripletMatrix {
            rows,
            cols,
            triplets: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (before duplicate coalescing).
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Appends `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.triplets.push((row, col, value));
    }

    /// Converts the accumulated triplets into CSR form, summing duplicates.
    pub fn to_csr(&self) -> SparseMatrix {
        SparseMatrix::from_triplets(self.rows, self.cols, &self.triplets)
    }
}

/// A sparse matrix in compressed-sparse-row (CSR) form.
///
/// Built from COO triplets (see [`TripletMatrix`]); once built, the sparsity
/// pattern is fixed and values can be updated in place with
/// [`SparseMatrix::fill_zero`] + [`SparseMatrix::add_at`] — the stamping
/// cycle the MNA engine uses.
///
/// # Example
///
/// ```
/// # use harvester_numerics::sparse::SparseMatrix;
/// # fn main() -> Result<(), harvester_numerics::NumericsError> {
/// let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 1, 3.0)]);
/// let x = a.solve(&[9.0, 6.0])?;
/// assert!((x[0] - 1.75).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from COO triplets, summing duplicate coordinates.
    /// Explicit zeros are kept as pattern entries.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero or any triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(r, c, _) in &sorted {
            assert!(
                r < rows && c < cols,
                "triplet ({r}, {c}) out of bounds for {rows}x{cols} matrix"
            );
        }
        sorted.sort_by_key(|t| (t.0, t.1));

        // Per-row entry counts first, then a prefix sum into row pointers.
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, v) in &sorted {
            if last == Some((r, c)) {
                *values.last_mut().expect("coalesce follows a push") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
                last = Some((r, c));
            }
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a sparse matrix from a dense one, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let mut triplets = Vec::new();
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                let v = dense[(i, j)];
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        // A fully zero matrix still needs valid (empty) CSR structure.
        SparseMatrix::from_triplets(dense.rows(), dense.cols(), &triplets)
    }

    /// Converts to a dense [`Matrix`].
    pub fn to_dense(&self) -> Matrix {
        let mut dense = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                dense[(r, self.col_idx[k])] += self.values[k];
            }
        }
        dense
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored entries (pattern slots, including explicit zeros).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Value at `(row, col)`; positions outside the pattern read as zero.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds"
        );
        match self.position(row, col) {
            Some(k) => self.values[k],
            None => 0.0,
        }
    }

    /// Iterates over the stored entries as `(row, col, value)`.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.row_ptr[r]..self.row_ptr[r + 1])
                .map(move |k| (r, self.col_idx[k], self.values[k]))
        })
    }

    /// Sets every stored value to zero, keeping the sparsity pattern — the
    /// start of each MNA assembly cycle.
    pub fn fill_zero(&mut self) {
        for v in &mut self.values {
            *v = 0.0;
        }
    }

    /// Adds `value` to the entry at `(row, col)` (the MNA stamping
    /// primitive).
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is not part of the sparsity pattern: stamping
    /// outside the pattern declared at assembly time is a programming error
    /// in the device model, not a recoverable condition.
    pub fn add_at(&mut self, row: usize, col: usize, value: f64) {
        match self.position(row, col) {
            Some(k) => self.values[k] += value,
            None => panic!("entry ({row}, {col}) is not in the sparsity pattern"),
        }
    }

    /// Returns `true` if `(row, col)` is part of the sparsity pattern.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds"
        );
        self.position(row, col).is_some()
    }

    fn position(&self, row: usize, col: usize) -> Option<usize> {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi]
            .binary_search(&col)
            .ok()
            .map(|p| lo + p)
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
        Ok(y)
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|r| {
                (self.row_ptr[r]..self.row_ptr[r + 1])
                    .map(|k| self.values[k].abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Performs the first (fully pivoted, symbolic + numeric) LU
    /// factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] for numerically singular
    /// matrices and [`NumericsError::DimensionMismatch`] for non-square ones.
    pub fn lu(&self) -> Result<SparseLu, NumericsError> {
        SparseLu::new(self)
    }

    /// Solves `A·x = b` by sparse LU factorisation.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SparseMatrix::lu`] and returns a dimension
    /// mismatch if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        self.lu()?.solve(b)
    }
}

/// Sparse LU factors with a reusable symbolic analysis.
///
/// Created by [`SparseMatrix::lu`]. The first factorisation records the row
/// permutation (partial pivoting), the merged L/U fill pattern and a scatter
/// map; [`SparseLu::refactor`] then refactors a **same-pattern** matrix in
/// `O(nnz(L+U))` with no allocation, and [`SparseLu::update`] adds an
/// automatic fallback to a fresh pivoted factorisation if the stored pivot
/// order has gone numerically stale.
///
/// # Example
///
/// ```
/// # use harvester_numerics::sparse::SparseMatrix;
/// # fn main() -> Result<(), harvester_numerics::NumericsError> {
/// let mut a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 1, 3.0)]);
/// let mut lu = a.lu()?;
/// let x1 = lu.solve(&[9.0, 6.0])?;
/// assert!((x1[0] - 1.75).abs() < 1e-12);
///
/// // New values, same pattern: cheap refactorisation, no symbolic work.
/// a.fill_zero();
/// a.add_at(0, 0, 2.0);
/// a.add_at(0, 1, 1.0);
/// a.add_at(1, 1, 1.0);
/// lu.refactor(&a)?;
/// let x2 = lu.solve(&[4.0, 2.0])?;
/// assert!((x2[0] - 1.0).abs() < 1e-12);
/// assert!((x2[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// `perm[i]` = original row stored as factor row `i`.
    perm: Vec<usize>,
    /// Combined L/U rows: `cols[row_start[i]..row_start[i + 1]]` ascending.
    row_start: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    /// Flat index of the diagonal entry of each factor row.
    diag: Vec<usize>,
    /// Maps each CSR entry of the factored matrix to its slot in `vals`.
    scatter: Vec<usize>,
    /// The CSR structure this factorisation was built from; `refactor`
    /// verifies a supplied matrix against it before reusing the analysis.
    pattern_row_ptr: Vec<usize>,
    pattern_cols: Vec<usize>,
    /// Reusable per-column entry-scale scratch (pivot-breakdown reference),
    /// refilled by `refactor` so the O(nnz) hot path stays allocation-free.
    col_scale: Vec<f64>,
}

impl SparseLu {
    /// Performs the first factorisation of `a`: partial pivoting, symbolic
    /// fill discovery and numeric elimination in one pass.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `a` is not square and
    /// [`NumericsError::SingularMatrix`] if a pivot smaller than
    /// `1e-14 ×` the pivot column's own entry scale is encountered (per-column
    /// rather than global scaling, so the mixed 1/dt-conductance and
    /// unit-scale rows of an MNA system are judged fairly).
    pub fn new(a: &SparseMatrix) -> Result<Self, NumericsError> {
        if !a.is_square() {
            return Err(NumericsError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", a.rows, a.cols),
            });
        }
        let n = a.rows;
        let col_scale = column_scales(a);

        // Working rows as sorted (col, value) lists, eliminated in place.
        let mut work: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|r| {
                (a.row_ptr[r]..a.row_ptr[r + 1])
                    .map(|k| (a.col_idx[k], a.values[k]))
                    .collect()
            })
            .collect();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivoting: largest |entry| in column k among the
            // not-yet-eliminated rows.
            let mut pivot_row = usize::MAX;
            let mut pivot_val = 0.0f64;
            for (i, row) in work.iter().enumerate().skip(k) {
                if let Ok(p) = row.binary_search_by_key(&k, |e| e.0) {
                    let v = row[p].1.abs();
                    if v > pivot_val {
                        pivot_val = v;
                        pivot_row = i;
                    }
                }
            }
            if pivot_row == usize::MAX || pivot_val <= PIVOT_RTOL * col_scale[k] {
                return Err(NumericsError::SingularMatrix {
                    column: k,
                    pivot: pivot_val,
                });
            }
            work.swap(k, pivot_row);
            perm.swap(k, pivot_row);

            let (top, bottom) = work.split_at_mut(k + 1);
            let pivot_row = &top[k];
            let pivot_pos = pivot_row
                .binary_search_by_key(&k, |e| e.0)
                .expect("pivot entry exists by construction");
            let pivot = pivot_row[pivot_pos].1;
            let updates = &pivot_row[pivot_pos + 1..];
            for row in bottom.iter_mut() {
                if let Ok(p) = row.binary_search_by_key(&k, |e| e.0) {
                    let factor = row[p].1 / pivot;
                    row[p].1 = factor; // the L multiplier, stored in place
                    merge_axpy(row, updates, factor);
                }
            }
        }

        // Flatten the combined L/U rows.
        let total: usize = work.iter().map(Vec::len).sum();
        let mut row_start = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(total);
        let mut vals = Vec::with_capacity(total);
        let mut diag = Vec::with_capacity(n);
        row_start.push(0);
        for (i, row) in work.iter().enumerate() {
            for &(c, v) in row {
                if c == i {
                    diag.push(cols.len());
                }
                cols.push(c);
                vals.push(v);
            }
            row_start.push(cols.len());
        }
        debug_assert_eq!(diag.len(), n, "every factor row has a diagonal");

        // Scatter map: CSR entry k of A lands at scatter[k] in `vals`.
        let mut scatter = vec![0usize; a.nnz()];
        for (i, &orig) in perm.iter().enumerate() {
            let lo = row_start[i];
            let hi = row_start[i + 1];
            for (k, &c) in a
                .col_idx
                .iter()
                .enumerate()
                .take(a.row_ptr[orig + 1])
                .skip(a.row_ptr[orig])
            {
                let p = cols[lo..hi]
                    .binary_search(&c)
                    .expect("factor pattern contains every entry of A");
                scatter[k] = lo + p;
            }
        }

        Ok(SparseLu {
            n,
            perm,
            row_start,
            cols,
            vals,
            diag,
            scatter,
            pattern_row_ptr: a.row_ptr.clone(),
            pattern_cols: a.col_idx.clone(),
            col_scale,
        })
    }

    /// Dimension of the factored system.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Number of stored factor entries (L + U combined) — a measure of
    /// fill-in.
    pub fn factor_nnz(&self) -> usize {
        self.cols.len()
    }

    /// Refactors a matrix with the **same sparsity pattern** as the one this
    /// factorisation was created from, reusing the stored pivot order and
    /// fill pattern. No allocation, no searching: `O(nnz(L+U))` work.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `a` has a different
    /// shape or entry count, [`NumericsError::InvalidArgument`] if the
    /// sparsity pattern itself differs from the factored one, and
    /// [`NumericsError::SingularMatrix`] if a pivot along the stored order
    /// became numerically tiny (the caller can recover with
    /// [`SparseLu::update`] or a fresh [`SparseLu::new`]).
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<(), NumericsError> {
        if a.rows != self.n || a.cols != self.n || a.nnz() != self.pattern_cols.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: format!(
                    "{0}x{0} matrix with {1} entries",
                    self.n,
                    self.pattern_cols.len()
                ),
                found: format!("{}x{} matrix with {} entries", a.rows, a.cols, a.nnz()),
            });
        }
        if a.row_ptr != self.pattern_row_ptr || a.col_idx != self.pattern_cols {
            return Err(NumericsError::InvalidArgument(
                "sparsity pattern does not match the factored pattern; \
                 use SparseLu::new for a structurally different matrix"
                    .to_string(),
            ));
        }
        refill_column_scales(a, &mut self.col_scale);

        for v in &mut self.vals {
            *v = 0.0;
        }
        for (k, &v) in a.values.iter().enumerate() {
            self.vals[self.scatter[k]] += v;
        }

        // Numeric elimination over the fixed pattern (up-looking, IKJ): the
        // pattern recorded by `new` is closed under this update order, so
        // every target position exists.
        for i in 0..self.n {
            let row_end = self.row_start[i + 1];
            for pos in self.row_start[i]..self.diag[i] {
                let j = self.cols[pos];
                let pivot = self.vals[self.diag[j]];
                if pivot.abs() <= PIVOT_RTOL * self.col_scale[j] {
                    return Err(NumericsError::SingularMatrix {
                        column: j,
                        pivot: pivot.abs(),
                    });
                }
                let factor = self.vals[pos] / pivot;
                self.vals[pos] = factor;
                if factor == 0.0 {
                    continue;
                }
                let mut t = pos + 1;
                for q in (self.diag[j] + 1)..self.row_start[j + 1] {
                    let c = self.cols[q];
                    while t < row_end && self.cols[t] < c {
                        t += 1;
                    }
                    if t >= row_end || self.cols[t] != c {
                        return Err(NumericsError::InvalidArgument(format!(
                            "sparsity pattern of the supplied matrix does not match the \
                             factored pattern (missing fill at ({i}, {c}))"
                        )));
                    }
                    self.vals[t] -= factor * self.vals[q];
                }
            }
            let d = self.vals[self.diag[i]];
            if d.abs() <= PIVOT_RTOL * self.col_scale[i] {
                return Err(NumericsError::SingularMatrix {
                    column: i,
                    pivot: d.abs(),
                });
            }
        }
        Ok(())
    }

    /// Refactors `a`, falling back to a fresh fully-pivoted factorisation if
    /// the stored pivot order has gone numerically stale.
    ///
    /// # Errors
    ///
    /// Returns the fallback's error if `a` cannot be factored at all (truly
    /// singular).
    pub fn update(&mut self, a: &SparseMatrix) -> Result<(), NumericsError> {
        match self.refactor(a) {
            Ok(()) => Ok(()),
            Err(_) => {
                *self = SparseLu::new(a)?;
                Ok(())
            }
        }
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a caller-provided buffer (no allocation when
    /// `x` already has capacity `n`).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericsError> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        // Forward substitution (L is unit lower triangular).
        for i in 0..n {
            let mut acc = x[i];
            for pos in self.row_start[i]..self.diag[i] {
                acc -= self.vals[pos] * x[self.cols[pos]];
            }
            x[i] = acc;
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for pos in (self.diag[i] + 1)..self.row_start[i + 1] {
                acc -= self.vals[pos] * x[self.cols[pos]];
            }
            x[i] = acc / self.vals[self.diag[i]];
        }
        Ok(())
    }
}

/// Computes `row ← row − factor·updates`, merging the sorted column lists
/// and inserting fill-in as needed. `updates` columns are all strictly
/// greater than any column `row` has been eliminated at so far.
fn merge_axpy(row: &mut Vec<(usize, f64)>, updates: &[(usize, f64)], factor: f64) {
    if updates.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(row.len() + updates.len());
    let mut i = 0;
    let mut j = 0;
    while i < row.len() && j < updates.len() {
        let (rc, rv) = row[i];
        let (uc, uv) = updates[j];
        match rc.cmp(&uc) {
            std::cmp::Ordering::Less => {
                out.push((rc, rv));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((uc, -factor * uv));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((rc, rv - factor * uv));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&row[i..]);
    out.extend(updates[j..].iter().map(|&(c, v)| (c, -factor * v)));
    *row = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_of(triplets: &[(usize, usize, f64)], n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for &(r, c, v) in triplets {
            m[(r, c)] += v;
        }
        m
    }

    #[test]
    fn triplet_roundtrip_coalesces_duplicates() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(2, 1, 4.0);
        t.push(0, 0, 2.0);
        t.push(1, 2, -1.0);
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 3);
        let csr = t.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.get(2, 1), 4.0);
        assert_eq!(csr.get(1, 2), -1.0);
        assert_eq!(csr.get(1, 1), 0.0);
        let dense = csr.to_dense();
        assert_eq!(dense[(0, 0)], 3.0);
        assert_eq!(dense[(2, 1)], 4.0);
    }

    #[test]
    fn from_dense_roundtrip() {
        let dense = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]]);
        let sparse = SparseMatrix::from_dense(&dense);
        assert_eq!(sparse.nnz(), 4);
        assert_eq!(sparse.to_dense(), dense);
        let entries: Vec<_> = sparse.entries().collect();
        assert_eq!(entries.len(), 4);
        assert!(entries.contains(&(2, 1, 4.0)));
    }

    #[test]
    fn empty_rows_are_handled() {
        let sparse = SparseMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 2.0)]);
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.get(1, 1), 0.0);
        assert_eq!(sparse.get(3, 3), 2.0);
        let y = sparse.mul_vec(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn mul_vec_checks_dimensions() {
        let sparse = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        assert!(matches!(
            sparse.mul_vec(&[1.0]),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn fill_zero_and_add_at_keep_the_pattern() {
        let mut sparse = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        sparse.fill_zero();
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.get(0, 0), 0.0);
        sparse.add_at(0, 0, 5.0);
        sparse.add_at(0, 0, 1.0);
        assert_eq!(sparse.get(0, 0), 6.0);
    }

    #[test]
    #[should_panic(expected = "not in the sparsity pattern")]
    fn add_at_outside_pattern_panics() {
        let mut sparse = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        sparse.add_at(0, 1, 1.0);
    }

    #[test]
    fn solve_matches_dense_on_a_known_system() {
        let triplets = [
            (0, 0, 2.0),
            (0, 1, 1.0),
            (0, 2, -1.0),
            (1, 0, -3.0),
            (1, 1, -1.0),
            (1, 2, 2.0),
            (2, 0, -2.0),
            (2, 1, 1.0),
            (2, 2, 2.0),
        ];
        let sparse = SparseMatrix::from_triplets(3, 3, &triplets);
        let b = [8.0, -11.0, -3.0];
        let x = sparse.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        let sparse = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let x = sparse.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let sparse = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)],
        );
        let err = sparse.solve(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, NumericsError::SingularMatrix { .. }));
        // Structurally singular: an empty row.
        let sparse = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        assert!(matches!(
            sparse.solve(&[1.0, 1.0]),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_lu_is_rejected() {
        let sparse = SparseMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(matches!(
            sparse.lu(),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_matches_fresh_factorisation() {
        let pattern = [
            (0, 0, 4.0),
            (0, 2, 1.0),
            (1, 1, 3.0),
            (1, 2, -1.0),
            (2, 0, 1.0),
            (2, 2, 5.0),
        ];
        let mut a = SparseMatrix::from_triplets(3, 3, &pattern);
        let mut lu = a.lu().unwrap();
        assert_eq!(lu.dimension(), 3);
        assert!(lu.factor_nnz() >= a.nnz());

        // Same pattern, new values.
        a.fill_zero();
        for &(r, c, v) in &pattern {
            a.add_at(r, c, 2.0 * v + 1.0);
        }
        lu.refactor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x_re = lu.solve(&b).unwrap();
        let x_fresh = a.to_dense().solve(&b).unwrap();
        for (r, f) in x_re.iter().zip(x_fresh.iter()) {
            assert!((r - f).abs() < 1e-12, "refactor {r} vs fresh {f}");
        }
    }

    #[test]
    fn refactor_rejects_pattern_mismatch() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let other = SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let mut lu = a.lu().unwrap();
        assert!(matches!(
            lu.refactor(&other),
            Err(NumericsError::DimensionMismatch { .. })
        ));
        // Same shape and entry count, different pattern: must be rejected,
        // not silently scattered into the wrong slots.
        let anti = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(matches!(
            lu.refactor(&anti),
            Err(NumericsError::InvalidArgument(_))
        ));
        // The factors survive a rejected refactor untouched.
        let x = lu.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn update_falls_back_when_the_pivot_order_goes_stale() {
        // First factorisation on a diagonally comfortable matrix keeps the
        // natural row order; the second value set makes that order's first
        // pivot numerically tiny, forcing the fallback repivot.
        let pattern = [(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)];
        let mut a = SparseMatrix::from_triplets(2, 2, &pattern);
        let mut lu = a.lu().unwrap();
        a.fill_zero();
        a.add_at(0, 0, 1e-30);
        a.add_at(0, 1, 1.0);
        a.add_at(1, 0, 1.0);
        a.add_at(1, 1, 1.0);
        assert!(matches!(
            lu.refactor(&a),
            Err(NumericsError::SingularMatrix { .. })
        ));
        lu.update(&a).unwrap();
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        let y = a.mul_vec(&x).unwrap();
        assert!((y[0] - 1.0).abs() < 1e-10 && (y[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn update_propagates_truly_singular_matrices() {
        let pattern = [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)];
        let good = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 0.0), (1, 0, 0.0), (1, 1, 1.0)],
        );
        let mut lu = good.lu().unwrap();
        let singular = SparseMatrix::from_triplets(2, 2, &pattern);
        assert!(matches!(
            lu.update(&singular),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn solve_into_reuses_the_buffer() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let lu = a.lu().unwrap();
        let mut x = Vec::with_capacity(2);
        lu.solve_into(&[2.0, 8.0], &mut x).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
        lu.solve_into(&[4.0, 4.0], &mut x).unwrap();
        assert_eq!(x, vec![2.0, 1.0]);
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn random_pattern_agrees_with_dense() {
        // Deterministic pseudo-random fill; diagonal dominance guarantees a
        // well-conditioned system.
        let n = 12;
        let mut triplets = Vec::new();
        let mut seed = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j && next() < 0.3 {
                    let v = 2.0 * next() - 1.0;
                    triplets.push((i, j, v));
                    row_sum += v.abs();
                }
            }
            triplets.push((i, i, row_sum + 1.0 + next()));
        }
        let sparse = SparseMatrix::from_triplets(n, n, &triplets);
        let dense = dense_of(&triplets, n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
        let xs = sparse.solve(&b).unwrap();
        let xd = dense.solve(&b).unwrap();
        for (s, d) in xs.iter().zip(xd.iter()) {
            assert!((s - d).abs() < 1e-10, "sparse {s} vs dense {d}");
        }
        assert!((sparse.inf_norm() - dense.inf_norm()).abs() < 1e-12);
    }
}
