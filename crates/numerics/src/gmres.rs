//! Restarted GMRES for matrix-free linear systems.
//!
//! The periodic-steady-state engine needs to solve `(I − M)·Δx₀ = r` where
//! `M` is the monodromy matrix of one excitation period. Forming `M` densely
//! costs `n` linearised period integrations; applying it to a *single* vector
//! costs one. GMRES only ever touches the operator through matrix–vector
//! products, which makes it the natural companion of a matrix-free shooting
//! method: the Krylov solver converges in a handful of matvecs because the
//! spectrum of `I − M` for a dissipative circuit clusters around `1`.
//!
//! The implementation here is a textbook restarted GMRES(m) (Saad &
//! Schultz 1986) with
//!
//! * an allocation-reusing [`GmresWorkspace`] so repeated solves (one per
//!   shooting-Newton iteration) perform no heap traffic,
//! * Givens rotations to keep the Hessenberg least-squares problem
//!   triangular incrementally (no QR re-solve per iteration), and
//! * convergence measured on the *relative* residual `‖b − A·x‖₂ / ‖b‖₂`.
//!
//! Breakdown and stagnation are reported as [`NumericsError`] values — the
//! solver never returns a silently-NaN solution vector.

use crate::fault::{Fault, FaultInjector};
use crate::linalg::{dot, norm2};
use crate::NumericsError;

/// Options controlling a [`GmresWorkspace::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOptions {
    /// Krylov subspace dimension per restart cycle (the `m` in GMRES(m)).
    pub restart: usize,
    /// Total matrix–vector product budget across all restart cycles.
    pub max_matvecs: usize,
    /// Relative-residual convergence target `‖b − A·x‖ ≤ tolerance · ‖b‖`.
    pub tolerance: f64,
}

impl Default for GmresOptions {
    fn default() -> Self {
        Self {
            restart: 30,
            max_matvecs: 200,
            tolerance: 1e-10,
        }
    }
}

/// Convergence summary of a successful GMRES solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOutcome {
    /// Number of matrix–vector products consumed.
    pub matvecs: usize,
    /// Number of restart cycles started (1 for a solve that never restarted).
    pub restarts: usize,
    /// Final relative residual `‖b − A·x‖₂ / ‖b‖₂`.
    pub relative_residual: f64,
}

/// If a full restart cycle shrinks the residual by less than this factor the
/// iteration is declared stagnant: another cycle from the same subspace
/// dimension is overwhelmingly likely to repeat the plateau.
const STAGNATION_FACTOR: f64 = 0.999;

/// Reusable state for restarted GMRES solves of a fixed problem size.
///
/// All Krylov basis vectors, the Hessenberg column store and the rotation
/// coefficients are allocated once in [`GmresWorkspace::new`] and reused by
/// every subsequent [`solve`](GmresWorkspace::solve); a shooting-Newton loop
/// performing one linear solve per nonlinear iteration allocates nothing
/// after the first.
#[derive(Debug, Clone)]
pub struct GmresWorkspace {
    n: usize,
    restart: usize,
    /// `restart + 1` orthonormal basis vectors of length `n`.
    basis: Vec<Vec<f64>>,
    /// Column-major upper-Hessenberg entries: column `j` holds `j + 2` values.
    hessenberg: Vec<Vec<f64>>,
    /// Givens rotation cosines/sines applied to the Hessenberg columns.
    cos: Vec<f64>,
    sin: Vec<f64>,
    /// Rotated right-hand side of the least-squares problem.
    g: Vec<f64>,
    /// Triangular back-substitution solution.
    y: Vec<f64>,
    /// Scratch vector for operator applications.
    scratch: Vec<f64>,
}

impl GmresWorkspace {
    /// Creates a workspace for systems of dimension `n` with the given
    /// restart length. A `restart` of zero is clamped to one.
    pub fn new(n: usize, restart: usize) -> Self {
        let m = restart.max(1).min(n.max(1));
        Self {
            n,
            restart: m,
            basis: (0..=m).map(|_| vec![0.0; n]).collect(),
            hessenberg: (0..m).map(|j| vec![0.0; j + 2]).collect(),
            cos: vec![0.0; m],
            sin: vec![0.0; m],
            g: vec![0.0; m + 1],
            y: vec![0.0; m],
            scratch: vec![0.0; n],
        }
    }

    /// Dimension of the systems this workspace was sized for.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Restart length `m` (Krylov subspace dimension per cycle).
    pub fn restart(&self) -> usize {
        self.restart
    }

    /// Solves `A·x = b` where `A` is available only through `matvec`.
    ///
    /// `matvec(v, out)` must write `A·v` into `out`; both slices have length
    /// `n`. On entry `x` is used as the initial guess; on success it holds the
    /// solution. Errors:
    ///
    /// * [`NumericsError::DimensionMismatch`] if `b`/`x` do not match `n`;
    /// * [`NumericsError::NoConvergence`] if the matvec budget is exhausted or
    ///   a restart cycle stagnates before reaching the tolerance;
    /// * [`NumericsError::InvalidArgument`] if the operator produces
    ///   non-finite values (breakdown is reported, never propagated as NaN).
    pub fn solve<F>(
        &mut self,
        matvec: F,
        b: &[f64],
        x: &mut [f64],
        options: &GmresOptions,
    ) -> Result<GmresOutcome, NumericsError>
    where
        F: FnMut(&[f64], &mut [f64]),
    {
        self.solve_with_injector(matvec, b, x, options, None)
    }

    /// [`solve`](GmresWorkspace::solve) with an optional [`FaultInjector`]
    /// consulted once per restart cycle at the stagnation check
    /// ([`Fault::KrylovStagnation`]): an injected firing makes the cycle
    /// report [`NumericsError::NoConvergence`] exactly as a genuine
    /// stagnation would, so callers' Krylov-failure fallbacks are directly
    /// testable. With `injector` `None` (or inert) the behaviour — down to
    /// the bit — is that of `solve`.
    pub fn solve_with_injector<F>(
        &mut self,
        mut matvec: F,
        b: &[f64],
        x: &mut [f64],
        options: &GmresOptions,
        mut injector: Option<&mut FaultInjector>,
    ) -> Result<GmresOutcome, NumericsError>
    where
        F: FnMut(&[f64], &mut [f64]),
    {
        let n = self.n;
        if b.len() != n || x.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vectors of length {n}"),
                found: format!("b of length {}, x of length {}", b.len(), x.len()),
            });
        }
        let b_norm = norm2(b);
        if !b_norm.is_finite() {
            return Err(NumericsError::InvalidArgument(
                "gmres right-hand side contains non-finite entries".into(),
            ));
        }
        if b_norm == 0.0 {
            x.fill(0.0);
            return Ok(GmresOutcome {
                matvecs: 0,
                restarts: 0,
                relative_residual: 0.0,
            });
        }

        let tol = options.tolerance.max(0.0);
        let max_matvecs = options.max_matvecs.max(1);
        let mut matvecs = 0usize;
        let mut restarts = 0usize;
        let mut prev_cycle_residual = f64::INFINITY;

        loop {
            // Residual of the current iterate: r = b − A·x.
            let x_is_zero = x.iter().all(|&v| v == 0.0);
            if x_is_zero {
                self.basis[0].copy_from_slice(b);
            } else {
                matvec(x, &mut self.scratch);
                matvecs += 1;
                for (r, (&rhs, &ax)) in self.basis[0].iter_mut().zip(b.iter().zip(&self.scratch)) {
                    *r = rhs - ax;
                }
            }
            let r_norm = norm2(&self.basis[0]);
            if !r_norm.is_finite() {
                return Err(NumericsError::InvalidArgument(
                    "gmres operator produced non-finite residual".into(),
                ));
            }
            if r_norm <= tol * b_norm {
                return Ok(GmresOutcome {
                    matvecs,
                    restarts,
                    relative_residual: r_norm / b_norm,
                });
            }
            if matvecs >= max_matvecs {
                return Err(NumericsError::NoConvergence {
                    iterations: matvecs,
                    residual: r_norm / b_norm,
                });
            }
            // Stagnation check across restart cycles: a cycle that failed to
            // reduce the residual will not be rescued by an identical cycle.
            // The fault injector is consulted here so an injected stagnation
            // takes the same exit a genuine one would.
            let injected = injector
                .as_deref_mut()
                .is_some_and(|f| f.should_fire(Fault::KrylovStagnation));
            if injected || (restarts > 0 && r_norm > STAGNATION_FACTOR * prev_cycle_residual) {
                return Err(NumericsError::NoConvergence {
                    iterations: matvecs,
                    residual: r_norm / b_norm,
                });
            }
            prev_cycle_residual = r_norm;
            restarts += 1;

            let inv = 1.0 / r_norm;
            for v in self.basis[0].iter_mut() {
                *v *= inv;
            }
            self.g.fill(0.0);
            self.g[0] = r_norm;

            let mut converged_cols = 0usize;
            let mut cycle_residual = r_norm;
            for j in 0..self.restart {
                if matvecs >= max_matvecs {
                    break;
                }
                // Arnoldi step: w = A·v_j, orthogonalise against the basis.
                matvec(&self.basis[j], &mut self.scratch);
                matvecs += 1;
                for i in 0..=j {
                    let h = dot(&self.basis[i], &self.scratch);
                    self.hessenberg[j][i] = h;
                    for (w, &v) in self.scratch.iter_mut().zip(self.basis[i].iter()) {
                        *w -= h * v;
                    }
                }
                let h_next = norm2(&self.scratch);
                if !h_next.is_finite() {
                    return Err(NumericsError::InvalidArgument(
                        "gmres operator produced non-finite Arnoldi vector".into(),
                    ));
                }
                self.hessenberg[j][j + 1] = h_next;

                // Apply the accumulated Givens rotations to the new column,
                // then generate and apply the rotation that eliminates the
                // subdiagonal entry.
                for i in 0..j {
                    let (c, s) = (self.cos[i], self.sin[i]);
                    let h_i = self.hessenberg[j][i];
                    let h_i1 = self.hessenberg[j][i + 1];
                    self.hessenberg[j][i] = c * h_i + s * h_i1;
                    self.hessenberg[j][i + 1] = -s * h_i + c * h_i1;
                }
                let h_jj = self.hessenberg[j][j];
                let denom = (h_jj * h_jj + h_next * h_next).sqrt();
                if denom == 0.0 {
                    // Exact breakdown with a zero diagonal: the least-squares
                    // problem is rank-deficient and cannot progress.
                    return Err(NumericsError::SingularMatrix {
                        column: j,
                        pivot: 0.0,
                    });
                }
                let (c, s) = (h_jj / denom, h_next / denom);
                self.cos[j] = c;
                self.sin[j] = s;
                self.hessenberg[j][j] = denom;
                self.hessenberg[j][j + 1] = 0.0;
                let g_j = self.g[j];
                self.g[j] = c * g_j;
                self.g[j + 1] = -s * g_j;
                converged_cols = j + 1;
                cycle_residual = self.g[j + 1].abs();

                // A "happy breakdown" (h_next ≈ 0) means the Krylov space is
                // invariant: the least-squares solution is exact.
                let happy = h_next <= 1e-14 * r_norm.max(1.0);
                if cycle_residual <= tol * b_norm || happy {
                    break;
                }
                // Next basis vector.
                let inv = 1.0 / h_next;
                for (v, &w) in self.basis[j + 1].iter_mut().zip(self.scratch.iter()) {
                    *v = w * inv;
                }
            }

            // Back-substitute H·y = g over the converged columns and update x.
            for j in (0..converged_cols).rev() {
                let mut sum = self.g[j];
                for k in (j + 1)..converged_cols {
                    sum -= self.hessenberg[k][j] * self.y[k];
                }
                self.y[j] = sum / self.hessenberg[j][j];
            }
            for j in 0..converged_cols {
                let yj = self.y[j];
                if !yj.is_finite() {
                    return Err(NumericsError::InvalidArgument(
                        "gmres least-squares solution is non-finite".into(),
                    ));
                }
                for (xi, &v) in x.iter_mut().zip(self.basis[j].iter()) {
                    *xi += yj * v;
                }
            }

            if cycle_residual <= tol * b_norm {
                // Verified on the next loop entry via the true residual; fall
                // through so convergence is always reported against b − A·x.
                continue;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    fn dense_matvec(a: &Matrix) -> impl Fn(&[f64], &mut [f64]) + '_ {
        move |v, out| {
            let product = a.mul_vec(v).unwrap();
            out.copy_from_slice(&product);
        }
    }

    #[test]
    fn solves_identity_in_one_matvec() {
        let n = 8;
        let a = Matrix::identity(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
        let mut x = vec![0.0; n];
        let mut ws = GmresWorkspace::new(n, 8);
        let outcome = ws
            .solve(dense_matvec(&a), &b, &mut x, &GmresOptions::default())
            .unwrap();
        for (xi, bi) in x.iter().zip(b.iter()) {
            assert!((xi - bi).abs() < 1e-12);
        }
        assert!(outcome.matvecs <= 2);
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = Matrix::identity(4);
        let b = vec![0.0; 4];
        let mut x = vec![1.0; 4];
        let mut ws = GmresWorkspace::new(4, 4);
        let outcome = ws
            .solve(dense_matvec(&a), &b, &mut x, &GmresOptions::default())
            .unwrap();
        assert_eq!(outcome.matvecs, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matches_dense_lu_on_well_conditioned_system() {
        let n = 12;
        let mut rows = Vec::new();
        for i in 0..n {
            let mut row = vec![0.0; n];
            for (j, slot) in row.iter_mut().enumerate() {
                // Deterministic pseudo-random off-diagonal entries.
                let v = (((i * 31 + j * 17 + 7) % 13) as f64 - 6.0) / 25.0;
                *slot = v;
            }
            row[i] += 4.0;
            rows.push(row);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let reference = a.solve(&b).unwrap();

        let mut x = vec![0.0; n];
        let mut ws = GmresWorkspace::new(n, 12);
        ws.solve(dense_matvec(&a), &b, &mut x, &GmresOptions::default())
            .unwrap();
        for (xi, ri) in x.iter().zip(reference.iter()) {
            assert!((xi - ri).abs() < 1e-9, "{xi} vs {ri}");
        }
    }

    #[test]
    fn restarted_solve_converges_with_short_cycles() {
        let n = 20;
        let mut rows = Vec::new();
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 3.0 + (i as f64) * 0.1;
            if i + 1 < n {
                row[i + 1] = -1.0;
            }
            if i > 0 {
                row[i - 1] = -0.5;
            }
            rows.push(row);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        let b = vec![1.0; n];
        let reference = a.solve(&b).unwrap();

        let mut x = vec![0.0; n];
        let mut ws = GmresWorkspace::new(n, 5);
        let outcome = ws
            .solve(
                dense_matvec(&a),
                &b,
                &mut x,
                &GmresOptions {
                    restart: 5,
                    max_matvecs: 400,
                    tolerance: 1e-11,
                },
            )
            .unwrap();
        assert!(outcome.restarts >= 2, "expected restarts, got {outcome:?}");
        for (xi, ri) in x.iter().zip(reference.iter()) {
            assert!((xi - ri).abs() < 1e-8);
        }
    }

    #[test]
    fn singular_operator_reports_error_not_nan() {
        // Rank-one operator: A·v = (v · ones) · e0. GMRES cannot solve
        // b outside the range and must report rather than emit NaNs.
        let n = 6;
        let matvec = |v: &[f64], out: &mut [f64]| {
            let s: f64 = v.iter().sum();
            out.fill(0.0);
            out[0] = s;
        };
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut ws = GmresWorkspace::new(n, 6);
        let err = ws
            .solve(matvec, &b, &mut x, &GmresOptions::default())
            .unwrap_err();
        match err {
            NumericsError::NoConvergence { .. } | NumericsError::SingularMatrix { .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn exhausted_matvec_budget_is_no_convergence() {
        let n = 10;
        let mut rows = Vec::new();
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            row[(i + 1) % n] = -0.999;
            rows.push(row);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        // Non-constant rhs: the Krylov space needs ~n shifts to capture it,
        // far more than the 4-matvec budget below.
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut x = vec![0.0; n];
        let mut ws = GmresWorkspace::new(n, 3);
        let result = ws.solve(
            dense_matvec(&a),
            &b,
            &mut x,
            &GmresOptions {
                restart: 3,
                max_matvecs: 4,
                tolerance: 1e-14,
            },
        );
        match result {
            Err(NumericsError::NoConvergence { iterations, .. }) => {
                assert!(iterations <= 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nonzero_initial_guess_is_used() {
        let n = 6;
        let a = Matrix::identity(n);
        let b = vec![2.0; n];
        let mut x = vec![2.0; n];
        let mut ws = GmresWorkspace::new(n, 6);
        let outcome = ws
            .solve(dense_matvec(&a), &b, &mut x, &GmresOptions::default())
            .unwrap();
        // The guess is already the solution: one matvec to verify, no cycles.
        assert_eq!(outcome.restarts, 0);
        assert!(x.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }
}
