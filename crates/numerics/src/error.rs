use std::error::Error;
use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// A matrix was singular (or numerically singular) during factorisation.
    SingularMatrix {
        /// Pivot column at which factorisation broke down.
        column: usize,
        /// Magnitude of the offending pivot.
        pivot: f64,
    },
    /// Dimensions of the operands do not match.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was supplied.
        found: String,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iterate.
        residual: f64,
    },
    /// An invalid argument was supplied (e.g. a non-positive step size).
    InvalidArgument(String),
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::SingularMatrix { column, pivot } => write!(
                f,
                "matrix is singular at column {column} (pivot magnitude {pivot:.3e})"
            ),
            NumericsError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumericsError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_singular() {
        let e = NumericsError::SingularMatrix {
            column: 3,
            pivot: 1e-18,
        };
        let s = e.to_string();
        assert!(s.contains("singular"));
        assert!(s.contains('3'));
    }

    #[test]
    fn display_no_convergence() {
        let e = NumericsError::NoConvergence {
            iterations: 50,
            residual: 0.5,
        };
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
