//! Initial-value-problem integrators.
//!
//! Two families are provided:
//!
//! * **Explicit** ([`rk4`], [`rkf45_adaptive`], [`forward_euler`],
//!   [`semi_implicit_euler`]) — used by the standalone behavioural generator
//!   models and as an independent cross-check of the circuit-level engine.
//! * **Implicit** ([`backward_euler`], [`trapezoidal`]) — A-stable methods for
//!   the stiff systems that appear once the large storage capacitor and diode
//!   nonlinearities are in the loop.

use crate::linalg::Matrix;
use crate::newton::{NewtonOptions, NewtonSolver, NonlinearSystem};
use crate::NumericsError;

/// A first-order ODE system `dx/dt = f(t, x)`.
pub trait OdeSystem {
    /// Number of state variables.
    fn dimension(&self) -> usize;

    /// Evaluates the derivative `f(t, x)` into `dxdt`.
    fn derivative(&self, t: f64, x: &[f64], dxdt: &mut [f64]);
}

impl<F> OdeSystem for (usize, F)
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    fn dimension(&self) -> usize {
        self.0
    }
    fn derivative(&self, t: f64, x: &[f64], dxdt: &mut [f64]) {
        (self.1)(t, x, dxdt);
    }
}

/// A recorded solution trajectory: times and the state at each time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    /// Sample times, strictly increasing.
    pub times: Vec<f64>,
    /// State vectors, one per sample time.
    pub states: Vec<Vec<f64>>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, t: f64, state: &[f64]) {
        self.times.push(t);
        self.states.push(state.to_vec());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Returns the final state, if any sample has been recorded.
    pub fn final_state(&self) -> Option<&[f64]> {
        self.states.last().map(|s| s.as_slice())
    }

    /// Extracts the time series of a single state component.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the recorded states.
    pub fn component(&self, index: usize) -> Vec<f64> {
        self.states.iter().map(|s| s[index]).collect()
    }

    /// Linearly interpolates component `index` at time `t` (clamped to the
    /// recorded range).
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn sample(&self, index: usize, t: f64) -> f64 {
        assert!(!self.is_empty(), "cannot sample an empty trajectory");
        if t <= self.times[0] {
            return self.states[0][index];
        }
        if t >= *self.times.last().unwrap() {
            return self.states.last().unwrap()[index];
        }
        let pos = self.times.partition_point(|&ti| ti <= t);
        let (t0, t1) = (self.times[pos - 1], self.times[pos]);
        let (x0, x1) = (self.states[pos - 1][index], self.states[pos][index]);
        if t1 == t0 {
            return x1;
        }
        x0 + (x1 - x0) * (t - t0) / (t1 - t0)
    }
}

fn validate_span(t0: f64, t1: f64, dt: f64) -> Result<(), NumericsError> {
    if dt.is_nan() || dt <= 0.0 {
        return Err(NumericsError::InvalidArgument(format!(
            "step size must be positive, got {dt}"
        )));
    }
    if t1 <= t0 {
        return Err(NumericsError::InvalidArgument(format!(
            "end time {t1} must exceed start time {t0}"
        )));
    }
    Ok(())
}

/// Integrates with the explicit (forward) Euler method at fixed step `dt`.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] for a non-positive step or an
/// empty time span.
pub fn forward_euler<S: OdeSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    dt: f64,
) -> Result<Trajectory, NumericsError> {
    validate_span(t0, t1, dt)?;
    let n = system.dimension();
    let mut x = x0.to_vec();
    let mut dxdt = vec![0.0; n];
    let mut traj = Trajectory::new();
    traj.push(t0, &x);
    let mut t = t0;
    while t < t1 - 1e-15 {
        let h = dt.min(t1 - t);
        system.derivative(t, &x, &mut dxdt);
        for i in 0..n {
            x[i] += h * dxdt[i];
        }
        t += h;
        traj.push(t, &x);
    }
    Ok(traj)
}

/// Integrates with the classic fourth-order Runge–Kutta method at fixed step.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] for a non-positive step or an
/// empty time span.
pub fn rk4<S: OdeSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    dt: f64,
) -> Result<Trajectory, NumericsError> {
    validate_span(t0, t1, dt)?;
    let n = system.dimension();
    let mut x = x0.to_vec();
    let (mut k1, mut k2, mut k3, mut k4) = (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    let mut tmp = vec![0.0; n];
    let mut traj = Trajectory::new();
    traj.push(t0, &x);
    let mut t = t0;
    while t < t1 - 1e-15 {
        let h = dt.min(t1 - t);
        system.derivative(t, &x, &mut k1);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * h * k1[i];
        }
        system.derivative(t + 0.5 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * h * k2[i];
        }
        system.derivative(t + 0.5 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = x[i] + h * k3[i];
        }
        system.derivative(t + h, &tmp, &mut k4);
        for i in 0..n {
            x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
        traj.push(t, &x);
    }
    Ok(traj)
}

/// Semi-implicit (symplectic) Euler for second-order mechanical systems whose
/// state is laid out as `[position..., velocity...]` with the first half
/// positions and the second half velocities.
///
/// The velocity is advanced first, then the position uses the *new* velocity,
/// which preserves the energy behaviour of oscillators much better than
/// forward Euler at the same cost.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] for a non-positive step, an
/// empty time span, or an odd state dimension.
pub fn semi_implicit_euler<S: OdeSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    dt: f64,
) -> Result<Trajectory, NumericsError> {
    validate_span(t0, t1, dt)?;
    let n = system.dimension();
    if n % 2 != 0 {
        return Err(NumericsError::InvalidArgument(
            "semi-implicit Euler requires an even state dimension (positions then velocities)"
                .to_string(),
        ));
    }
    let half = n / 2;
    let mut x = x0.to_vec();
    let mut dxdt = vec![0.0; n];
    let mut traj = Trajectory::new();
    traj.push(t0, &x);
    let mut t = t0;
    while t < t1 - 1e-15 {
        let h = dt.min(t1 - t);
        system.derivative(t, &x, &mut dxdt);
        // Advance velocities with the current acceleration…
        for i in half..n {
            x[i] += h * dxdt[i];
        }
        // …then positions with the *updated* velocities.
        for i in 0..half {
            x[i] += h * x[half + i];
        }
        t += h;
        traj.push(t, &x);
    }
    Ok(traj)
}

/// Options for the adaptive RKF45 integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Relative local error tolerance.
    pub rel_tol: f64,
    /// Absolute local error tolerance.
    pub abs_tol: f64,
    /// Initial step size.
    pub initial_step: f64,
    /// Smallest permitted step size.
    pub min_step: f64,
    /// Largest permitted step size.
    pub max_step: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
            initial_step: 1e-4,
            min_step: 1e-12,
            max_step: 1e-2,
        }
    }
}

/// Integrates with the adaptive Runge–Kutta–Fehlberg 4(5) method.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] for invalid options and
/// [`NumericsError::NoConvergence`] if the step controller collapses the step
/// below `min_step`.
pub fn rkf45_adaptive<S: OdeSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    options: &AdaptiveOptions,
) -> Result<Trajectory, NumericsError> {
    validate_span(t0, t1, options.initial_step)?;
    if options.min_step <= 0.0 || options.max_step < options.min_step {
        return Err(NumericsError::InvalidArgument(
            "adaptive options require 0 < min_step <= max_step".to_string(),
        ));
    }
    let n = system.dimension();
    let mut x = x0.to_vec();
    let mut traj = Trajectory::new();
    traj.push(t0, &x);
    let mut t = t0;
    let mut h = options.initial_step.min(t1 - t0);

    // Fehlberg coefficients.
    const A: [[f64; 5]; 5] = [
        [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
        [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
        [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
        [
            -8.0 / 27.0,
            2.0,
            -3544.0 / 2565.0,
            1859.0 / 4104.0,
            -11.0 / 40.0,
        ],
    ];
    const C: [f64; 6] = [0.0, 0.25, 0.375, 12.0 / 13.0, 1.0, 0.5];
    const B4: [f64; 6] = [
        25.0 / 216.0,
        0.0,
        1408.0 / 2565.0,
        2197.0 / 4104.0,
        -1.0 / 5.0,
        0.0,
    ];
    const B5: [f64; 6] = [
        16.0 / 135.0,
        0.0,
        6656.0 / 12825.0,
        28561.0 / 56430.0,
        -9.0 / 50.0,
        2.0 / 55.0,
    ];

    let mut k = vec![vec![0.0; n]; 6];
    let mut tmp = vec![0.0; n];
    let mut iterations_guard = 0usize;
    let max_total_steps = 50_000_000usize;

    while t < t1 - 1e-15 {
        iterations_guard += 1;
        if iterations_guard > max_total_steps {
            return Err(NumericsError::NoConvergence {
                iterations: iterations_guard,
                residual: h,
            });
        }
        h = h.min(t1 - t).min(options.max_step);
        system.derivative(t, &x, &mut k[0]);
        for stage in 1..6 {
            for i in 0..n {
                let mut acc = 0.0;
                for (j, kj) in k.iter().enumerate().take(stage) {
                    acc += A[stage - 1][j] * kj[i];
                }
                tmp[i] = x[i] + h * acc;
            }
            let (before, after) = k.split_at_mut(stage);
            let _ = before;
            system.derivative(t + C[stage] * h, &tmp, &mut after[0]);
        }
        // Fourth and fifth order solutions, error estimate.
        let mut err_norm = 0.0f64;
        let mut x5 = vec![0.0; n];
        for i in 0..n {
            let mut acc4 = 0.0;
            let mut acc5 = 0.0;
            for j in 0..6 {
                acc4 += B4[j] * k[j][i];
                acc5 += B5[j] * k[j][i];
            }
            let y4 = x[i] + h * acc4;
            let y5 = x[i] + h * acc5;
            x5[i] = y5;
            let scale = options.abs_tol + options.rel_tol * x[i].abs().max(y5.abs());
            err_norm = err_norm.max(((y5 - y4) / scale).abs());
        }
        if err_norm <= 1.0 {
            t += h;
            x = x5;
            traj.push(t, &x);
        }
        // Step-size controller.
        let factor = if err_norm > 0.0 {
            0.9 * err_norm.powf(-0.2)
        } else {
            5.0
        };
        h *= factor.clamp(0.2, 5.0);
        if h < options.min_step {
            return Err(NumericsError::NoConvergence {
                iterations: iterations_guard,
                residual: err_norm,
            });
        }
    }
    Ok(traj)
}

/// Implicit single-step context handed to the Newton solver.
struct ImplicitStep<'a, S: OdeSystem + ?Sized> {
    system: &'a S,
    x_prev: &'a [f64],
    f_prev: &'a [f64],
    t_next: f64,
    dt: f64,
    /// 1.0 for backward Euler, 0.5 for trapezoidal.
    theta: f64,
}

impl<S: OdeSystem + ?Sized> NonlinearSystem for ImplicitStep<'_, S> {
    fn dimension(&self) -> usize {
        self.system.dimension()
    }

    fn residual(&self, x: &[f64], residual: &mut [f64]) {
        let n = self.dimension();
        let mut f_next = vec![0.0; n];
        self.system.derivative(self.t_next, x, &mut f_next);
        for i in 0..n {
            residual[i] = x[i]
                - self.x_prev[i]
                - self.dt * (self.theta * f_next[i] + (1.0 - self.theta) * self.f_prev[i]);
        }
    }

    fn jacobian(&self, x: &[f64], jacobian: &mut Matrix) {
        // Finite-difference the derivative function and assemble
        // I - dt*theta*df/dx.
        let n = self.dimension();
        let mut base = vec![0.0; n];
        self.system.derivative(self.t_next, x, &mut base);
        let mut xp = x.to_vec();
        let mut fp = vec![0.0; n];
        for j in 0..n {
            let h = 1e-7 * x[j].abs().max(1e-7);
            xp[j] = x[j] + h;
            self.system.derivative(self.t_next, &xp, &mut fp);
            for i in 0..n {
                let dfdx = (fp[i] - base[i]) / h;
                jacobian[(i, j)] = if i == j { 1.0 } else { 0.0 } - self.dt * self.theta * dfdx;
            }
            xp[j] = x[j];
        }
    }
}

fn implicit_theta<S: OdeSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    dt: f64,
    theta: f64,
) -> Result<Trajectory, NumericsError> {
    validate_span(t0, t1, dt)?;
    let n = system.dimension();
    let solver = NewtonSolver::new(NewtonOptions {
        max_iterations: 50,
        residual_tolerance: 1e-10,
        ..NewtonOptions::default()
    });
    let mut x = x0.to_vec();
    let mut f_prev = vec![0.0; n];
    let mut traj = Trajectory::new();
    traj.push(t0, &x);
    let mut t = t0;
    while t < t1 - 1e-15 {
        let h = dt.min(t1 - t);
        system.derivative(t, &x, &mut f_prev);
        let step = ImplicitStep {
            system,
            x_prev: &x,
            f_prev: &f_prev,
            t_next: t + h,
            dt: h,
            theta,
        };
        // Predictor: explicit Euler.
        let guess: Vec<f64> = (0..n).map(|i| x[i] + h * f_prev[i]).collect();
        let result = solver.solve(&step, &guess)?;
        x = result.solution;
        t += h;
        traj.push(t, &x);
    }
    Ok(traj)
}

/// Integrates with the implicit (backward) Euler method, an L-stable method
/// appropriate for stiff circuit dynamics.
///
/// # Errors
///
/// Propagates Newton convergence failures and invalid-argument errors.
pub fn backward_euler<S: OdeSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    dt: f64,
) -> Result<Trajectory, NumericsError> {
    implicit_theta(system, x0, t0, t1, dt, 1.0)
}

/// Integrates with the trapezoidal rule (Crank–Nicolson), an A-stable
/// second-order method.
///
/// # Errors
///
/// Propagates Newton convergence failures and invalid-argument errors.
pub fn trapezoidal<S: OdeSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    dt: f64,
) -> Result<Trajectory, NumericsError> {
    implicit_theta(system, x0, t0, t1, dt, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dx/dt = -x, solution exp(-t).
    struct Decay;
    impl OdeSystem for Decay {
        fn dimension(&self) -> usize {
            1
        }
        fn derivative(&self, _t: f64, x: &[f64], dxdt: &mut [f64]) {
            dxdt[0] = -x[0];
        }
    }

    /// Harmonic oscillator x'' = -x as a first-order system [x, v].
    struct Oscillator;
    impl OdeSystem for Oscillator {
        fn dimension(&self) -> usize {
            2
        }
        fn derivative(&self, _t: f64, x: &[f64], dxdt: &mut [f64]) {
            dxdt[0] = x[1];
            dxdt[1] = -x[0];
        }
    }

    #[test]
    fn rk4_matches_exponential_decay() {
        let traj = rk4(&Decay, &[1.0], 0.0, 1.0, 1e-3).unwrap();
        let last = traj.final_state().unwrap()[0];
        assert!((last - (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn forward_euler_is_first_order() {
        let coarse = forward_euler(&Decay, &[1.0], 0.0, 1.0, 1e-2).unwrap();
        let fine = forward_euler(&Decay, &[1.0], 0.0, 1.0, 1e-3).unwrap();
        let exact = (-1.0f64).exp();
        let err_coarse = (coarse.final_state().unwrap()[0] - exact).abs();
        let err_fine = (fine.final_state().unwrap()[0] - exact).abs();
        // Error should shrink roughly 10x for a 10x smaller step.
        assert!(err_fine < err_coarse / 5.0);
    }

    #[test]
    fn rk4_is_higher_order_than_euler() {
        let euler = forward_euler(&Decay, &[1.0], 0.0, 1.0, 1e-2).unwrap();
        let rk = rk4(&Decay, &[1.0], 0.0, 1.0, 1e-2).unwrap();
        let exact = (-1.0f64).exp();
        assert!(
            (rk.final_state().unwrap()[0] - exact).abs()
                < (euler.final_state().unwrap()[0] - exact).abs() / 100.0
        );
    }

    #[test]
    fn backward_euler_is_stable_for_stiff_decay() {
        // dx/dt = -1000 x with dt far above the explicit stability limit.
        let stiff = (1usize, |_t: f64, x: &[f64], dxdt: &mut [f64]| {
            dxdt[0] = -1000.0 * x[0];
        });
        let traj = backward_euler(&stiff, &[1.0], 0.0, 0.1, 1e-2).unwrap();
        let last = traj.final_state().unwrap()[0];
        assert!(last.abs() < 1.0, "implicit method must not blow up");
        assert!(last >= 0.0);
    }

    #[test]
    fn trapezoidal_is_second_order() {
        let coarse = trapezoidal(&Decay, &[1.0], 0.0, 1.0, 2e-2).unwrap();
        let fine = trapezoidal(&Decay, &[1.0], 0.0, 1.0, 1e-2).unwrap();
        let exact = (-1.0f64).exp();
        let err_coarse = (coarse.final_state().unwrap()[0] - exact).abs();
        let err_fine = (fine.final_state().unwrap()[0] - exact).abs();
        assert!(err_fine < err_coarse / 3.0, "expected ~4x error reduction");
    }

    #[test]
    fn rkf45_meets_tolerance() {
        let traj = rkf45_adaptive(
            &Oscillator,
            &[1.0, 0.0],
            0.0,
            10.0,
            &AdaptiveOptions::default(),
        )
        .unwrap();
        let last = traj.final_state().unwrap();
        assert!((last[0] - 10.0f64.cos()).abs() < 1e-4);
        assert!((last[1] + 10.0f64.sin()).abs() < 1e-4);
    }

    #[test]
    fn semi_implicit_euler_conserves_oscillator_energy() {
        let traj = semi_implicit_euler(&Oscillator, &[1.0, 0.0], 0.0, 100.0, 1e-3).unwrap();
        let last = traj.final_state().unwrap();
        let energy = 0.5 * (last[0] * last[0] + last[1] * last[1]);
        assert!(
            (energy - 0.5).abs() < 1e-2,
            "symplectic energy drift too big"
        );
    }

    #[test]
    fn semi_implicit_euler_rejects_odd_dimension() {
        assert!(semi_implicit_euler(&Decay, &[1.0], 0.0, 1.0, 1e-3).is_err());
    }

    #[test]
    fn invalid_step_is_rejected() {
        assert!(rk4(&Decay, &[1.0], 0.0, 1.0, 0.0).is_err());
        assert!(rk4(&Decay, &[1.0], 1.0, 0.0, 1e-3).is_err());
    }

    #[test]
    fn trajectory_sampling_interpolates() {
        let mut traj = Trajectory::new();
        traj.push(0.0, &[0.0]);
        traj.push(1.0, &[2.0]);
        assert_eq!(traj.sample(0, 0.5), 1.0);
        assert_eq!(traj.sample(0, -1.0), 0.0);
        assert_eq!(traj.sample(0, 2.0), 2.0);
        assert_eq!(traj.component(0), vec![0.0, 2.0]);
        assert_eq!(traj.len(), 2);
        assert!(!traj.is_empty());
    }

    #[test]
    fn closure_based_system_works() {
        let sys = (1usize, |_t: f64, x: &[f64], d: &mut [f64]| {
            d[0] = 2.0 * x[0]
        });
        let traj = rk4(&sys, &[1.0], 0.0, 0.5, 1e-3).unwrap();
        assert!((traj.final_state().unwrap()[0] - 1.0f64.exp()).abs() < 1e-6);
    }
}
