//! Monodromy-matrix accumulation and the dense shooting-Newton update.
//!
//! A shooting method for periodic steady state integrates one excitation
//! period `T` of a discretised DAE and asks for closure: `x(T) = x(0)`.
//! Newton's method on the closure residual needs the **monodromy matrix**
//! `M = ∂x(T)/∂x(0)`, which for a companion-model time stepper is obtained by
//! chaining one sensitivity solve per accepted time step against the step's
//! already-factored Newton Jacobian.
//!
//! # The recursion
//!
//! With companion differentiation (`ddt` in the MNA kernel), the residual of
//! step `k` depends on the previous accepted solution only through each
//! differentiated value's history `p_j = v_j(x_{k−1})` and, for the
//! trapezoidal rule, the previous derivative `q_j`:
//!
//! ```text
//! d_j = (α/h)·(v_j(x_k) − p_j) − β·q_j       α = 1, β = 0  (backward Euler)
//!                                            α = 2, β = 1  (trapezoidal)
//! ```
//!
//! Writing `b_j = ∂F/∂d_j` (constant for physical devices: derivatives enter
//! residuals linearly) and `W(x) = Σ_j α·b_j·∇v_j(x)ᵀ` — the *dynamic stamp
//! matrix*, recoverable from two Jacobian assemblies at different step sizes
//! because `J(x, h) = G'(x) + W(x)/h` — the per-step sensitivities
//! `S_k = ∂x_k/∂x_0` and the trapezoidal memory term `P_k = Σ_j b_j·∂q_j/∂x_0`
//! obey
//!
//! ```text
//! J_k·S_k = (1/h)·W_{k−1}·S_{k−1} + β·P_{k−1}          (one solve per column)
//! P_k     = (1/h)·W_k·S_k − RHS_k
//! ```
//!
//! starting from `S_0 = I`, `P_0 = 0`. After a full period `M = S_N`, and the
//! shooting update solves `(I − M)·Δx_0 = x(T) − x(0)`.
//!
//! This module owns the dense bookkeeping; the caller supplies the `W`
//! matrices (extracted from its Jacobian assemblies) and a per-column linear
//! solve against its factored step Jacobian.

use crate::linalg::Matrix;
use crate::NumericsError;

/// Dense per-step sensitivity state of a shooting integration: the running
/// monodromy factor `S_k = ∂x_k/∂x_0`, the trapezoidal memory term `P_k` and
/// the dynamic stamp matrices `W` of the two most recent accepted points.
///
/// Usage per period: fill [`MonodromyAccumulator::w_mut`] with `W(x_0)` and
/// call [`MonodromyAccumulator::seed`], then after every accepted step fill
/// `w_mut` with `W(x_k)` and call [`MonodromyAccumulator::advance_step`].
/// When the period is complete, [`MonodromyAccumulator::monodromy`] is
/// `∂x(T)/∂x(0)`.
#[derive(Debug, Clone)]
pub struct MonodromyAccumulator {
    n: usize,
    /// `S_k = ∂x_k/∂x_0`.
    sensitivity: Matrix,
    /// `P_k = Σ_j b_j·∂q_j/∂x_0` (trapezoidal derivative-state memory).
    memory: Matrix,
    /// Scratch for the per-step right-hand side `(1/h)·W_{k−1}·S_{k−1} + β·P`.
    rhs: Matrix,
    /// `W` at the previously accepted point (`x_{k−1}`).
    w_prev: Matrix,
    /// `W` at the newly accepted point (`x_k`); filled by the caller.
    w_curr: Matrix,
    col: Vec<f64>,
    sol: Vec<f64>,
}

impl MonodromyAccumulator {
    /// Creates an accumulator for an `n`-unknown system.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "sensitivity system must have at least one unknown");
        MonodromyAccumulator {
            n,
            sensitivity: Matrix::identity(n),
            memory: Matrix::zeros(n, n),
            rhs: Matrix::zeros(n, n),
            w_prev: Matrix::zeros(n, n),
            w_curr: Matrix::zeros(n, n),
            col: vec![0.0; n],
            sol: Vec::with_capacity(n),
        }
    }

    /// System size the accumulator was built for.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// The dynamic stamp matrix of the *newest* accepted point, for the
    /// caller to fill (typically: zero it, add `2h·J(h)`, subtract
    /// `2h·J(2h)`) before [`MonodromyAccumulator::seed`] or
    /// [`MonodromyAccumulator::advance_step`].
    pub fn w_mut(&mut self) -> &mut Matrix {
        &mut self.w_curr
    }

    /// Starts a fresh period at the point whose `W` the caller just wrote
    /// through [`MonodromyAccumulator::w_mut`]: resets `S` to the identity,
    /// clears the memory term and installs that `W` as the previous-point
    /// stamp matrix.
    pub fn seed(&mut self) {
        for i in 0..self.n {
            for j in 0..self.n {
                self.sensitivity[(i, j)] = if i == j { 1.0 } else { 0.0 };
            }
        }
        self.memory.fill_zero();
        std::mem::swap(&mut self.w_prev, &mut self.w_curr);
    }

    /// Advances the sensitivity across one accepted step of size `h`, whose
    /// converged Jacobian the caller exposes through `solve` (a factored
    /// linear solve `J_k·x = b`; returns `false` on failure). `w_mut` must
    /// already hold `W` at the newly accepted point; `trapezoidal_memory`
    /// selects β = 1 (trapezoidal) or β = 0 (backward Euler).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] for a non-positive step and
    /// [`NumericsError::SingularMatrix`] when `solve` reports failure.
    pub fn advance_step<F>(
        &mut self,
        h: f64,
        trapezoidal_memory: bool,
        mut solve: F,
    ) -> Result<(), NumericsError>
    where
        F: FnMut(&[f64], &mut Vec<f64>) -> bool,
    {
        if h <= 0.0 || !h.is_finite() {
            return Err(NumericsError::InvalidArgument(format!(
                "sensitivity step size must be positive and finite, got {h}"
            )));
        }
        let n = self.n;
        // RHS_k = (1/h)·W_{k−1}·S_{k−1} (+ P_{k−1} under the trapezoidal rule).
        if trapezoidal_memory {
            self.rhs.copy_from(&self.memory);
        } else {
            self.rhs.fill_zero();
        }
        mat_mul_acc(1.0 / h, &self.w_prev, &self.sensitivity, &mut self.rhs);
        // One factored solve per column: J_k·S_k[:, c] = RHS[:, c]. The old
        // S is fully consumed by the RHS product above, so the solutions can
        // overwrite it in place.
        for c in 0..n {
            for r in 0..n {
                self.col[r] = self.rhs[(r, c)];
            }
            if !solve(&self.col, &mut self.sol) || self.sol.len() != n {
                return Err(NumericsError::SingularMatrix {
                    column: c,
                    pivot: 0.0,
                });
            }
            for r in 0..n {
                self.sensitivity[(r, c)] = self.sol[r];
            }
        }
        // P_k = (1/h)·W_k·S_k − RHS_k.
        for i in 0..n {
            for j in 0..n {
                self.memory[(i, j)] = -self.rhs[(i, j)];
            }
        }
        mat_mul_acc(1.0 / h, &self.w_curr, &self.sensitivity, &mut self.memory);
        std::mem::swap(&mut self.w_prev, &mut self.w_curr);
        Ok(())
    }

    /// The accumulated sensitivity `S_k = ∂x_k/∂x_0` — the monodromy matrix
    /// once a full period has been advanced.
    pub fn monodromy(&self) -> &Matrix {
        &self.sensitivity
    }
}

/// The matrix-free counterpart of [`MonodromyAccumulator`]: propagates a
/// **single vector** `v` through the per-step sensitivity recursion instead
/// of all `n` columns of `S_k`, so one pass over a cached period computes
/// `M·v` with one back-substitution per step — the matvec a Krylov method
/// (GMRES) needs to solve `(I − M)·Δx₀ = x(T) − x(0)` without ever forming
/// the monodromy matrix.
///
/// The recursion is identical to the dense one with `S_k` replaced by
/// `s_k = S_k·v` and `P_k` by `p_k = P_k·v`:
///
/// ```text
/// J_k·s_k = (1/h)·W_{k−1}·s_{k−1} + β·p_{k−1}          (one solve per step)
/// p_k     = (1/h)·W_k·s_k − rhs_k
/// ```
///
/// The caller supplies the `W` matrices in sparse **triplet** form (they
/// have one row per differentiated quantity, so a dense product would waste
/// almost all its work) and a factored solve per step.
#[derive(Debug, Clone)]
pub struct VectorSensitivity {
    n: usize,
    /// `s_k = S_k·v`.
    state: Vec<f64>,
    /// `p_k = P_k·v` (trapezoidal derivative-state memory).
    memory: Vec<f64>,
    /// Scratch for the per-step right-hand side.
    rhs: Vec<f64>,
    sol: Vec<f64>,
}

impl VectorSensitivity {
    /// Creates a propagator for an `n`-unknown system.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "sensitivity system must have at least one unknown");
        VectorSensitivity {
            n,
            state: vec![0.0; n],
            memory: vec![0.0; n],
            rhs: vec![0.0; n],
            sol: Vec::with_capacity(n),
        }
    }

    /// System size the propagator was built for.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Starts a fresh period: `s = v`, `p = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not `n` long.
    pub fn seed(&mut self, v: &[f64]) {
        self.state.copy_from_slice(v);
        self.memory.fill(0.0);
    }

    /// Advances the vector sensitivity across one accepted step of size `h`:
    /// `w_prev`/`w_curr` are the dynamic stamp matrices of the previous and
    /// the newly accepted point as `(row, col, value)` triplets, and `solve`
    /// is a factored linear solve against the step's converged Jacobian.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] for a non-positive step and
    /// [`NumericsError::SingularMatrix`] when `solve` reports failure.
    pub fn advance_step<F>(
        &mut self,
        h: f64,
        trapezoidal_memory: bool,
        w_prev: &[(usize, usize, f64)],
        w_curr: &[(usize, usize, f64)],
        mut solve: F,
    ) -> Result<(), NumericsError>
    where
        F: FnMut(&[f64], &mut Vec<f64>) -> bool,
    {
        if h <= 0.0 || !h.is_finite() {
            return Err(NumericsError::InvalidArgument(format!(
                "sensitivity step size must be positive and finite, got {h}"
            )));
        }
        let n = self.n;
        if trapezoidal_memory {
            self.rhs.copy_from_slice(&self.memory);
        } else {
            self.rhs.fill(0.0);
        }
        let inv_h = 1.0 / h;
        for &(r, c, w) in w_prev {
            self.rhs[r] += inv_h * w * self.state[c];
        }
        if !solve(&self.rhs, &mut self.sol) || self.sol.len() != n {
            return Err(NumericsError::SingularMatrix {
                column: 0,
                pivot: 0.0,
            });
        }
        self.state.copy_from_slice(&self.sol);
        for (m, r) in self.memory.iter_mut().zip(self.rhs.iter()) {
            *m = -r;
        }
        for &(r, c, w) in w_curr {
            self.memory[r] += inv_h * w * self.state[c];
        }
        Ok(())
    }

    /// The propagated vector `s_k = S_k·v` — equal to `M·v` once a full
    /// period has been advanced.
    pub fn state(&self) -> &[f64] {
        &self.state
    }
}

/// `out += alpha·a·b`, skipping zero entries of `a` — the dynamic stamp
/// matrices are extremely sparse (one row per differentiated quantity), so
/// the triple loop degenerates to `nnz(a)·n` work.
fn mat_mul_acc(alpha: f64, a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let n = a.rows();
    for i in 0..n {
        for k in 0..n {
            let w = a[(i, k)];
            if w == 0.0 {
                continue;
            }
            let scale = alpha * w;
            for j in 0..n {
                out[(i, j)] += scale * b[(k, j)];
            }
        }
    }
}

/// Solves the shooting-Newton update `(I − M)·Δx₀ = x(T) − x(0)` for the
/// correction `Δx₀` to the period-start state.
///
/// # Errors
///
/// Returns [`NumericsError::SingularMatrix`] when `I − M` is (numerically)
/// singular — the periodic orbit is neutrally stable at this discretisation
/// and shooting cannot improve on plain settling — and
/// [`NumericsError::DimensionMismatch`] for inconsistent shapes.
pub fn shooting_update(monodromy: &Matrix, closure: &[f64]) -> Result<Vec<f64>, NumericsError> {
    let n = monodromy.rows();
    if !monodromy.is_square() || closure.len() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("{n}x{n} monodromy with a length-{n} closure residual"),
            found: format!(
                "{}x{} matrix with a length-{} residual",
                monodromy.rows(),
                monodromy.cols(),
                closure.len()
            ),
        });
    }
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = -monodromy[(i, j)];
        }
        a[(i, i)] += 1.0;
    }
    a.lu()?.solve(closure)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar backward-Euler model problem `dx/dt = λx`: the step equation is
    /// `(x_k − x_{k−1})/h − λ·x_k = 0`, so `J = 1/h − λ`, `W = 1`, and the
    /// per-step sensitivity must equal the BE amplification `1/(1 − λh)`.
    #[test]
    fn scalar_backward_euler_amplification_is_reproduced() {
        let lambda = -3.0;
        let h = 0.1;
        let jac = 1.0 / h - lambda;
        let mut acc = MonodromyAccumulator::new(1);
        acc.w_mut()[(0, 0)] = 1.0;
        acc.seed();
        let mut m = 1.0;
        for _ in 0..5 {
            acc.w_mut()[(0, 0)] = 1.0;
            acc.advance_step(h, false, |b, x| {
                x.clear();
                x.push(b[0] / jac);
                true
            })
            .unwrap();
            m /= 1.0 - lambda * h;
        }
        assert!((acc.monodromy()[(0, 0)] - m).abs() < 1e-12 * m.abs());
    }

    /// Scalar trapezoidal model problem `dx/dt = λx`: with the period-start
    /// derivative state frozen (`P₀ = 0`, the shooting restart semantics),
    /// the first step's sensitivity is `(2/h)/(2/h − λ)` and every later
    /// step contributes the classical amplification
    /// `(1 + λh/2)/(1 − λh/2)` — the memory recursion must reproduce the
    /// product exactly.
    #[test]
    fn scalar_trapezoidal_amplification_is_reproduced() {
        let lambda = -3.0;
        let h = 0.1;
        // Step equation: 2(x_k − x_{k−1})/h − q_{k−1} − λ·x_k = 0 with
        // q_k = 2(x_k − x_{k−1})/h − q_{k−1}; J = 2/h − λ, W = 2 (α = 2).
        let jac = 2.0 / h - lambda;
        let mut acc = MonodromyAccumulator::new(1);
        acc.w_mut()[(0, 0)] = 2.0;
        acc.seed();
        let amp = (1.0 + lambda * h / 2.0) / (1.0 - lambda * h / 2.0);
        let mut m = 1.0;
        for k in 0..7 {
            acc.w_mut()[(0, 0)] = 2.0;
            acc.advance_step(h, true, |b, x| {
                x.clear();
                x.push(b[0] / jac);
                true
            })
            .unwrap();
            m *= if k == 0 { (2.0 / h) / jac } else { amp };
        }
        assert!(
            (acc.monodromy()[(0, 0)] - m).abs() < 1e-12,
            "trapezoidal monodromy {} must match the frozen-memory product {}",
            acc.monodromy()[(0, 0)],
            m
        );
    }

    #[test]
    fn shooting_update_solves_the_closure_system() {
        // M = diag(0.5, -1): (I − M) = diag(0.5, 2).
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = 0.5;
        m[(1, 1)] = -1.0;
        let delta = shooting_update(&m, &[1.0, 4.0]).unwrap();
        assert!((delta[0] - 2.0).abs() < 1e-14);
        assert!((delta[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn shooting_update_reports_neutral_orbits_as_singular() {
        let m = Matrix::identity(3);
        assert!(matches!(
            shooting_update(&m, &[1.0, 0.0, 0.0]),
            Err(NumericsError::SingularMatrix { .. })
        ));
        assert!(matches!(
            shooting_update(&Matrix::identity(2), &[1.0]),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    /// The vector propagator must agree with the dense accumulator applied
    /// to the same chain, column by column — same recursion, two codepaths.
    #[test]
    fn vector_propagation_matches_dense_accumulation() {
        let n = 4;
        let h = 0.05;
        // Deterministic pseudo-random W per point and a fixed, diagonally
        // dominant Jacobian (stands in for the factored step Jacobians).
        let w_at = |point: usize| -> Vec<(usize, usize, f64)> {
            let mut w = Vec::new();
            for r in 0..n {
                for c in 0..n {
                    let v = (((point * 7 + r * 5 + c * 3) % 11) as f64 - 5.0) / 7.0;
                    if v != 0.0 {
                        w.push((r, c, v));
                    }
                }
            }
            w
        };
        let jac = |b: &[f64], x: &mut Vec<f64>| -> bool {
            // J = 10·I + lower shift: forward substitution.
            x.clear();
            for r in 0..n {
                let prev = if r > 0 { x[r - 1] } else { 0.0 };
                x.push((b[r] - 0.5 * prev) / 10.0);
            }
            true
        };

        let steps = 5usize;
        let mut acc = MonodromyAccumulator::new(n);
        let install = |acc: &mut MonodromyAccumulator, point: usize| {
            acc.w_mut().fill_zero();
            for &(r, c, v) in &w_at(point) {
                acc.w_mut()[(r, c)] += v;
            }
        };
        install(&mut acc, 0);
        acc.seed();
        for k in 0..steps {
            install(&mut acc, k + 1);
            acc.advance_step(h, k > 0, jac).unwrap();
        }

        let mut prop = VectorSensitivity::new(n);
        for col in 0..n {
            let mut e = vec![0.0; n];
            e[col] = 1.0;
            prop.seed(&e);
            for k in 0..steps {
                prop.advance_step(h, k > 0, &w_at(k), &w_at(k + 1), jac)
                    .unwrap();
            }
            for row in 0..n {
                assert!(
                    (prop.state()[row] - acc.monodromy()[(row, col)]).abs() < 1e-13,
                    "column {col} row {row}: {} vs {}",
                    prop.state()[row],
                    acc.monodromy()[(row, col)]
                );
            }
        }
    }

    #[test]
    fn failed_sensitivity_solve_is_reported() {
        let mut acc = MonodromyAccumulator::new(2);
        acc.seed();
        let err = acc.advance_step(0.1, false, |_, _| false).unwrap_err();
        assert!(matches!(err, NumericsError::SingularMatrix { .. }));
        assert!(acc.advance_step(-1.0, false, |_, _| true).is_err());
    }
}
