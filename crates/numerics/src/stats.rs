//! Small statistics and waveform-analysis helpers used by the experiment
//! harness (RMS values, total harmonic distortion, regression slopes for
//! charging-rate estimation).

use crate::NumericsError;

/// Arithmetic mean of a slice; returns `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance of a slice; returns `0.0` for fewer than two samples.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Root-mean-square value of a waveform; returns `0.0` for an empty slice.
pub fn rms(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt()
}

/// Maximum absolute value; returns `0.0` for an empty slice.
pub fn peak(values: &[f64]) -> f64 {
    values.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
}

/// Least-squares straight-line fit `y ≈ slope·x + intercept`.
///
/// Used to estimate charging *rates* from super-capacitor voltage traces.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if fewer than two points are
/// supplied, the lengths differ, or all abscissae are identical.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Result<(f64, f64), NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidArgument(format!(
            "regression requires equal lengths, got {} and {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(NumericsError::InvalidArgument(
            "regression requires at least two points".to_string(),
        ));
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 {
        return Err(NumericsError::InvalidArgument(
            "regression abscissae are all identical".to_string(),
        ));
    }
    let slope = sxy / sxx;
    Ok((slope, my - slope * mx))
}

/// Single-frequency discrete Fourier coefficient of a uniformly sampled
/// waveform: returns the amplitude of the component at `frequency_hz`.
///
/// `dt` is the sampling interval in seconds.
pub fn fourier_amplitude(samples: &[f64], dt: f64, frequency_hz: f64) -> f64 {
    if samples.is_empty() || dt <= 0.0 {
        return 0.0;
    }
    let omega = 2.0 * std::f64::consts::PI * frequency_hz;
    let mut re = 0.0;
    let mut im = 0.0;
    for (k, s) in samples.iter().enumerate() {
        let t = k as f64 * dt;
        re += s * (omega * t).cos();
        im += s * (omega * t).sin();
    }
    2.0 * (re * re + im * im).sqrt() / samples.len() as f64
}

/// Total harmonic distortion of a waveform relative to a fundamental
/// frequency, using harmonics 2..=`harmonics`.
///
/// Returns the ratio `sqrt(Σ harmonic²) / fundamental`; `0.0` if the
/// fundamental amplitude is zero. A pure sine has THD ≈ 0; the clipped,
/// non-sinusoidal generator output of the paper's Fig. 7 has a markedly
/// higher THD, which is how the experiment harness quantifies
/// "non-sine-wave output".
pub fn total_harmonic_distortion(
    samples: &[f64],
    dt: f64,
    fundamental_hz: f64,
    harmonics: usize,
) -> f64 {
    let fundamental = fourier_amplitude(samples, dt, fundamental_hz);
    if fundamental == 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for h in 2..=harmonics.max(2) {
        let a = fourier_amplitude(samples, dt, fundamental_hz * h as f64);
        acc += a * a;
    }
    acc.sqrt() / fundamental
}

/// Trapezoidal numerical integration of uniformly or non-uniformly sampled
/// data `∫ y dx`.
///
/// Returns `0.0` for fewer than two samples.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
pub fn trapezoid_integral(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "integration length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 1..xs.len() {
        acc += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn mean_variance_rms_of_known_data() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&data), 2.5);
        assert!((variance(&data) - 1.25).abs() < 1e-12);
        assert!((rms(&data) - (7.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(peak(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(peak(&[]), 0.0);
        assert_eq!(trapezoid_integral(&[], &[]), 0.0);
    }

    #[test]
    fn regression_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let (slope, intercept) = linear_regression(&xs, &ys).unwrap();
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((intercept + 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_rejects_degenerate_input() {
        assert!(linear_regression(&[1.0], &[1.0]).is_err());
        assert!(linear_regression(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(linear_regression(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn fourier_amplitude_of_pure_sine() {
        let f = 50.0;
        let dt = 1e-4;
        let samples: Vec<f64> = (0..2000)
            .map(|k| (2.0 * PI * f * k as f64 * dt).sin() * 3.0)
            .collect();
        let a = fourier_amplitude(&samples, dt, f);
        assert!((a - 3.0).abs() < 0.05);
    }

    #[test]
    fn thd_distinguishes_sine_from_square() {
        let f = 50.0;
        let dt = 1e-4;
        let n = 2000;
        let sine: Vec<f64> = (0..n)
            .map(|k| (2.0 * PI * f * k as f64 * dt).sin())
            .collect();
        let square: Vec<f64> = sine.iter().map(|s| s.signum()).collect();
        let thd_sine = total_harmonic_distortion(&sine, dt, f, 9);
        let thd_square = total_harmonic_distortion(&square, dt, f, 9);
        assert!(thd_sine < 0.05, "sine THD should be tiny, got {thd_sine}");
        assert!(
            thd_square > 0.3,
            "square THD should be large, got {thd_square}"
        );
    }

    #[test]
    fn trapezoid_integrates_linear_function_exactly() {
        let xs: Vec<f64> = (0..=10).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        assert!((trapezoid_integral(&xs, &ys) - 1.0).abs() < 1e-12);
    }
}
