//! Dense matrices, vectors and LU factorisation with partial pivoting.
//!
//! The systems assembled by modified nodal analysis of an energy harvester are
//! small (tens of unknowns), so a dense, dependency-free solver is the right
//! tool: no sparse bookkeeping, perfectly predictable performance, trivially
//! testable.

use crate::NumericsError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// # use harvester_numerics::linalg::Matrix;
/// let m = Matrix::identity(3);
/// assert_eq!(m[(1, 1)], 1.0);
/// assert_eq!(m[(0, 1)], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has inconsistent length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }

    /// Copies every entry of `src` into this matrix without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the matrices have different shapes.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.rows, src.rows, "row count mismatch");
        assert_eq!(self.cols, src.cols, "column count mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Adds `value` to the entry at `(row, col)` (the "stamping" primitive
    /// used by modified nodal analysis).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add_at(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] += value;
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] if a pivot smaller than
    /// `1e-14 ×` the pivot column's own entry scale is encountered, and
    /// [`NumericsError::DimensionMismatch`] if the matrix is not square.
    pub fn lu(&self) -> Result<LuFactors, NumericsError> {
        if !self.is_square() {
            return Err(NumericsError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let mut factors = LuFactors {
            lu: self.clone(),
            perm: (0..self.rows).collect(),
            sign: 1.0,
            col_scale: Vec::new(),
        };
        factorize_in_place(&mut factors)?;
        Ok(factors)
    }

    /// LU factorisation into an existing [`LuFactors`], reusing its storage.
    ///
    /// Repeated factorisations of same-sized matrices (one per Newton
    /// iteration in a transient analysis) then perform no allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Matrix::lu`].
    pub fn lu_into(&self, factors: &mut LuFactors) -> Result<(), NumericsError> {
        if !self.is_square() {
            return Err(NumericsError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        if factors.lu.rows == n && factors.lu.cols == n {
            factors.lu.data.copy_from_slice(&self.data);
        } else {
            factors.lu = self.clone();
        }
        factors.perm.clear();
        factors.perm.extend(0..n);
        factors.sign = 1.0;
        factorize_in_place(factors)
    }

    /// Solves `A·x = b` by LU factorisation.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Matrix::lu`] and returns a dimension mismatch
    /// if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        self.lu()?.solve(b)
    }

    /// Determinant, computed via LU factorisation.
    ///
    /// Returns `0.0` for a numerically singular matrix.
    pub fn determinant(&self) -> f64 {
        match self.lu() {
            Ok(f) => f.determinant(),
            Err(_) => 0.0,
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row count mismatch");
        assert_eq!(self.cols, rhs.cols, "column count mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += r;
        }
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row count mismatch");
        assert_eq!(self.cols, rhs.cols, "column count mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= r;
        }
        out
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

/// Gaussian elimination with partial pivoting on pre-initialised factors
/// (`lu` holds the matrix to factor, `perm` the identity, `sign` 1.0).
fn factorize_in_place(factors: &mut LuFactors) -> Result<(), NumericsError> {
    let lu = &mut factors.lu;
    let n = lu.rows;
    // Singularity is judged per column against the column's own entry scale,
    // not against the global matrix norm: MNA matrices mix 1/dt-scaled
    // companion conductances with unit-scale branch equations, and a global
    // threshold would misdiagnose the well-posed small-scale columns as
    // singular whenever the time step is small. The scale buffer lives in
    // the factors so repeated `lu_into` calls stay allocation-free.
    let col_scale = &mut factors.col_scale;
    col_scale.clear();
    col_scale.resize(n, 0.0);
    for i in 0..n {
        for (j, scale) in col_scale.iter_mut().enumerate() {
            let v = lu[(i, j)].abs();
            if v > *scale {
                *scale = v;
            }
        }
    }

    for k in 0..n {
        // Find the pivot row.
        let mut pivot_row = k;
        let mut pivot_val = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = i;
            }
        }
        if pivot_val <= 1e-14 * col_scale[k].max(f64::MIN_POSITIVE) {
            return Err(NumericsError::SingularMatrix {
                column: k,
                pivot: pivot_val,
            });
        }
        if pivot_row != k {
            for j in 0..n {
                let a = lu[(k, j)];
                let b = lu[(pivot_row, j)];
                lu[(k, j)] = b;
                lu[(pivot_row, j)] = a;
            }
            factors.perm.swap(k, pivot_row);
            factors.sign = -factors.sign;
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let factor = lu[(i, k)] / pivot;
            lu[(i, k)] = factor;
            for j in (k + 1)..n {
                let delta = factor * lu[(k, j)];
                lu[(i, j)] -= delta;
            }
        }
    }
    Ok(())
}

/// The result of an LU factorisation with partial pivoting.
///
/// Stores the combined L (unit lower triangular) and U factors plus the row
/// permutation, so repeated right-hand sides can be solved cheaply.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
    /// Per-column entry scales of the matrix being factored (pivot-breakdown
    /// reference); kept as a reusable scratch so `lu_into` stays
    /// allocation-free across repeated factorisations.
    col_scale: Vec<f64>,
}

impl LuFactors {
    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a caller-provided buffer (no allocation when
    /// `x` already has capacity for the solution).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericsError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Apply the permutation, then forward/backward substitution.
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Determinant of the factored matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.lu.rows {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// Euclidean (L2) norm of a vector.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Infinity norm (maximum absolute entry) of a vector.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |acc, x| acc.max(x.abs()))
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Computes `y ← y + alpha·x` in place.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let m = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = m.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(b.iter()) {
            assert!((xi - bi).abs() < 1e-15);
        }
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = [8.0, -11.0, -3.0];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = a.solve(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, NumericsError::SingularMatrix { .. }));
    }

    #[test]
    fn non_square_lu_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.lu(),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        assert!((a.determinant() - -14.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_singular_matrix_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.determinant(), 0.0);
    }

    #[test]
    fn matrix_multiplication() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matrix_add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
        let c = &(&a + &b) - &b;
        for i in 0..2 {
            for j in 0..2 {
                assert!((c[(i, j)] - a[(i, j)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = a.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn mul_vec_dimension_mismatch() {
        let a = Matrix::identity(2);
        assert!(a.mul_vec(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn vector_helpers() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn lu_reuse_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let f = a.lu().unwrap();
        let x1 = f.solve(&[10.0, 12.0]).unwrap();
        let x2 = f.solve(&[1.0, 0.0]).unwrap();
        let r1 = a.mul_vec(&x1).unwrap();
        let r2 = a.mul_vec(&x2).unwrap();
        assert!((r1[0] - 10.0).abs() < 1e-12 && (r1[1] - 12.0).abs() < 1e-12);
        assert!((r2[0] - 1.0).abs() < 1e-12 && (r2[1]).abs() < 1e-12);
    }

    #[test]
    fn lu_into_reuses_buffers_across_factorisations() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let mut factors = a.lu().unwrap();
        let b = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        b.lu_into(&mut factors).unwrap();
        let mut x = Vec::new();
        factors.solve_into(&[4.0, 7.0], &mut x).unwrap();
        let y = b.mul_vec(&x).unwrap();
        assert!((y[0] - 4.0).abs() < 1e-12 && (y[1] - 7.0).abs() < 1e-12);
        // A singular refill reports the error without poisoning the API.
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            s.lu_into(&mut factors),
            Err(NumericsError::SingularMatrix { .. })
        ));
        // Dimension changes are handled by reallocation.
        let c = Matrix::identity(3);
        c.lu_into(&mut factors).unwrap();
        factors.solve_into(&[1.0, 2.0, 3.0], &mut x).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert!(Matrix::zeros(2, 3).lu_into(&mut factors).is_err());
        assert!(factors.solve_into(&[1.0], &mut x).is_err());
    }

    #[test]
    fn norms_are_consistent() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.0, 3.0]]);
        assert!((a.frobenius_norm() - (1.0f64 + 4.0 + 9.0).sqrt()).abs() < 1e-14);
        assert_eq!(a.inf_norm(), 3.0);
    }
}
