//! Deterministic fault injection for exercising solver fallback paths.
//!
//! The simulation stack is full of recovery code that healthy fixtures never
//! reach: the sparse LU's stale-pivot repivot, the matrix-free shooting
//! engine's GMRES→dense fallback, the operating-point homotopy cascade, the
//! transient engine's step-halving and gmin-ramp recovery. A
//! [`FaultInjector`] makes those paths *directly* testable: the solver layer
//! consults it at well-defined sites (factorisations, residual assemblies,
//! Krylov solves) and the injector decides — deterministically — whether the
//! `k`-th consultation of a given [`Fault`] kind should fail.
//!
//! The injector is **inert by default**: a `FaultInjector` with no armed
//! plans (and, in production, the absence of an injector altogether) never
//! fires and costs one branch per consultation site. Occurrence counting is
//! per fault kind and 1-based, so `arm(Fault::SingularFactorization, 3)`
//! fails exactly the third factorisation the run attempts.
//!
//! ```
//! use harvester_numerics::fault::{Fault, FaultInjector};
//!
//! let mut inj = FaultInjector::new();
//! inj.arm(Fault::SingularFactorization, 2);
//! assert!(!inj.should_fire(Fault::SingularFactorization)); // occurrence 1
//! assert!(inj.should_fire(Fault::SingularFactorization)); // occurrence 2
//! assert!(!inj.should_fire(Fault::SingularFactorization)); // occurrence 3
//! assert_eq!(inj.fired(Fault::SingularFactorization), 1);
//! ```

/// A fault kind the solver layer knows how to inject.
///
/// Each variant names one consultation site class; the consuming layer
/// documents exactly where it consults the injector (see
/// `docs/robustness.md` in the workspace root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Fault {
    /// A matrix factorisation reports itself singular even though the matrix
    /// is fine — exercises Newton-level retry/halving and repivot paths.
    SingularFactorization,
    /// A cached sparse factorisation's numeric refresh is rejected as if a
    /// pivot had gone stale — forces the full symbolic repivot path.
    StalePivot,
    /// A freshly assembled *transient* Newton residual is poisoned to NaN —
    /// the step cannot converge and the engine must halve or recover.
    NanResidual,
    /// A freshly assembled *static* (operating-point) Newton residual is
    /// poisoned to NaN — drives the gmin/source-stepping homotopy cascade.
    NanStaticResidual,
    /// A Krylov solve stagnates immediately — exercises the GMRES→dense
    /// monodromy fallback of the matrix-free shooting engine.
    KrylovStagnation,
}

/// Number of distinct [`Fault`] kinds (the injector keys its per-kind
/// occurrence counters by [`Fault::index`]).
const FAULT_KINDS: usize = 5;

impl Fault {
    fn index(self) -> usize {
        match self {
            Fault::SingularFactorization => 0,
            Fault::StalePivot => 1,
            Fault::NanResidual => 2,
            Fault::NanStaticResidual => 3,
            Fault::KrylovStagnation => 4,
        }
    }
}

/// One armed injection plan: fire `fault` on every occurrence in
/// `[first, first + count)` (1-based; `count == None` means open-ended).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FaultPlan {
    fault: Fault,
    first: usize,
    count: Option<usize>,
}

impl FaultPlan {
    fn covers(&self, fault: Fault, occurrence: usize) -> bool {
        if self.fault != fault || occurrence < self.first {
            return false;
        }
        match self.count {
            Some(count) => occurrence < self.first + count,
            None => true,
        }
    }
}

/// A fault that actually fired: which kind, at which 1-based occurrence of
/// that kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The fault kind that fired.
    pub fault: Fault,
    /// The 1-based consultation index (per kind) at which it fired.
    pub occurrence: usize,
}

/// Deterministic, seedable fault injector (see the [module docs](self)).
///
/// Cloning an injector clones its plans *and* its counters, so a clone
/// replays identically from its current position.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultInjector {
    plans: Vec<FaultPlan>,
    consultations: [usize; FAULT_KINDS],
    log: Vec<FaultEvent>,
}

impl FaultInjector {
    /// An inert injector: nothing is armed, nothing ever fires.
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Arms `fault` to fire exactly once, at its `occurrence`-th
    /// consultation (1-based).
    pub fn arm(&mut self, fault: Fault, occurrence: usize) -> &mut Self {
        self.arm_window(fault, occurrence.max(1), 1)
    }

    /// Arms `fault` to fire on every consultation in
    /// `[first, first + count)` (1-based).
    pub fn arm_window(&mut self, fault: Fault, first: usize, count: usize) -> &mut Self {
        self.plans.push(FaultPlan {
            fault,
            first: first.max(1),
            count: Some(count),
        });
        self
    }

    /// Arms `fault` to fire on **every** consultation from the first on.
    pub fn arm_always(&mut self, fault: Fault) -> &mut Self {
        self.plans.push(FaultPlan {
            fault,
            first: 1,
            count: None,
        });
        self
    }

    /// Arms `fault` at a pseudo-random occurrence in `[1, window]` derived
    /// deterministically from `seed` (SplitMix64) — the same seed always
    /// picks the same occurrence, so a failing fuzz case is replayable from
    /// its seed alone.
    pub fn arm_seeded(&mut self, fault: Fault, seed: u64, window: usize) -> &mut Self {
        let occurrence = 1 + (splitmix64(seed) % window.max(1) as u64) as usize;
        self.arm(fault, occurrence)
    }

    /// Whether any plan is armed for `fault` (fired or not).
    pub fn is_armed(&self, fault: Fault) -> bool {
        self.plans.iter().any(|p| p.fault == fault)
    }

    /// Consults the injector: counts one occurrence of `fault` and returns
    /// `true` when an armed plan covers it. Firing occurrences are recorded
    /// in [`FaultInjector::events`].
    pub fn should_fire(&mut self, fault: Fault) -> bool {
        self.consultations[fault.index()] += 1;
        let occurrence = self.consultations[fault.index()];
        if self.plans.iter().any(|p| p.covers(fault, occurrence)) {
            self.log.push(FaultEvent { fault, occurrence });
            true
        } else {
            false
        }
    }

    /// How many times `fault` has been consulted so far.
    pub fn consultations(&self, fault: Fault) -> usize {
        self.consultations[fault.index()]
    }

    /// How many times `fault` has actually fired.
    pub fn fired(&self, fault: Fault) -> usize {
        self.log.iter().filter(|e| e.fault == fault).count()
    }

    /// Every fault that fired, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.log
    }
}

/// SplitMix64 — the same tiny deterministic generator the workspace's fuzz
/// harnesses use to expand a case seed.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_injector_never_fires() {
        let mut inj = FaultInjector::new();
        for _ in 0..100 {
            assert!(!inj.should_fire(Fault::NanResidual));
        }
        assert_eq!(inj.consultations(Fault::NanResidual), 100);
        assert_eq!(inj.fired(Fault::NanResidual), 0);
        assert!(inj.events().is_empty());
    }

    #[test]
    fn single_occurrence_fires_exactly_once() {
        let mut inj = FaultInjector::new();
        inj.arm(Fault::StalePivot, 3);
        let fired: Vec<bool> = (0..5).map(|_| inj.should_fire(Fault::StalePivot)).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(
            inj.events(),
            &[FaultEvent {
                fault: Fault::StalePivot,
                occurrence: 3
            }]
        );
    }

    #[test]
    fn kinds_are_counted_independently() {
        let mut inj = FaultInjector::new();
        inj.arm(Fault::SingularFactorization, 1);
        assert!(!inj.should_fire(Fault::KrylovStagnation));
        assert!(inj.should_fire(Fault::SingularFactorization));
        assert_eq!(inj.consultations(Fault::KrylovStagnation), 1);
        assert_eq!(inj.consultations(Fault::SingularFactorization), 1);
    }

    #[test]
    fn windows_and_always_cover_ranges() {
        let mut inj = FaultInjector::new();
        inj.arm_window(Fault::NanResidual, 2, 2);
        let fired: Vec<bool> = (0..4)
            .map(|_| inj.should_fire(Fault::NanResidual))
            .collect();
        assert_eq!(fired, vec![false, true, true, false]);

        let mut always = FaultInjector::new();
        always.arm_always(Fault::KrylovStagnation);
        assert!((0..10).all(|_| always.should_fire(Fault::KrylovStagnation)));
    }

    #[test]
    fn seeded_arming_is_deterministic_and_in_window() {
        let a = {
            let mut inj = FaultInjector::new();
            inj.arm_seeded(Fault::NanResidual, 42, 8);
            inj
        };
        let b = {
            let mut inj = FaultInjector::new();
            inj.arm_seeded(Fault::NanResidual, 42, 8);
            inj
        };
        assert_eq!(a, b);
        let mut inj = a;
        let fired = (0..8)
            .filter(|_| inj.should_fire(Fault::NanResidual))
            .count();
        assert_eq!(fired, 1, "seeded plan must land inside the window");
    }

    #[test]
    fn clone_replays_from_current_position() {
        let mut inj = FaultInjector::new();
        inj.arm(Fault::StalePivot, 2);
        assert!(!inj.should_fire(Fault::StalePivot));
        let mut clone = inj.clone();
        assert!(inj.should_fire(Fault::StalePivot));
        assert!(clone.should_fire(Fault::StalePivot));
    }
}
