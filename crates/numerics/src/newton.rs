//! Damped Newton–Raphson solver for systems of nonlinear equations.
//!
//! The mixed-technology transient engine solves one nonlinear system per time
//! step (node voltages, branch currents, mechanical displacement/velocity),
//! so this module is the inner loop of the whole simulator.

use crate::linalg::{norm_inf, Matrix};
use crate::NumericsError;

/// A system of nonlinear equations `F(x) = 0` with an analytic Jacobian.
///
/// Implementors fill the residual and Jacobian for the supplied iterate; the
/// buffers are pre-zeroed by the solver.
pub trait NonlinearSystem {
    /// Number of unknowns (and equations).
    fn dimension(&self) -> usize;

    /// Evaluates the residual `F(x)` into `residual`.
    fn residual(&self, x: &[f64], residual: &mut [f64]);

    /// Evaluates the Jacobian `∂F/∂x` into `jacobian`.
    ///
    /// The default implementation uses forward finite differences on
    /// [`NonlinearSystem::residual`]; override it with an analytic Jacobian
    /// for speed and robustness.
    fn jacobian(&self, x: &[f64], jacobian: &mut Matrix) {
        finite_difference_jacobian(self, x, jacobian);
    }
}

/// Fills `jacobian` with a forward finite-difference approximation of the
/// Jacobian of `system` at `x`.
pub fn finite_difference_jacobian<S: NonlinearSystem + ?Sized>(
    system: &S,
    x: &[f64],
    jacobian: &mut Matrix,
) {
    let n = system.dimension();
    let mut base = vec![0.0; n];
    system.residual(x, &mut base);
    let mut xp = x.to_vec();
    let mut fp = vec![0.0; n];
    for j in 0..n {
        let h = 1e-7 * x[j].abs().max(1e-7);
        xp[j] = x[j] + h;
        system.residual(&xp, &mut fp);
        for i in 0..n {
            jacobian[(i, j)] = (fp[i] - base[i]) / h;
        }
        xp[j] = x[j];
    }
}

/// Configuration for [`NewtonSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum number of Newton iterations per solve.
    pub max_iterations: usize,
    /// Absolute tolerance on the residual infinity norm.
    pub residual_tolerance: f64,
    /// Absolute tolerance on the update infinity norm.
    pub step_tolerance: f64,
    /// Damping factor applied when a full step increases the residual
    /// (`0 < damping ≤ 1`); the step is halved repeatedly down to
    /// `min_damping`.
    pub min_damping: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 100,
            residual_tolerance: 1e-9,
            step_tolerance: 1e-12,
            min_damping: 1.0 / 64.0,
        }
    }
}

/// Outcome of a successful Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonResult {
    /// The converged solution.
    pub solution: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual infinity norm.
    pub residual_norm: f64,
}

/// Damped Newton–Raphson solver.
///
/// # Example
///
/// ```
/// # use harvester_numerics::newton::{NewtonOptions, NewtonSolver, NonlinearSystem};
/// # use harvester_numerics::linalg::Matrix;
/// struct Circle;
/// impl NonlinearSystem for Circle {
///     fn dimension(&self) -> usize { 2 }
///     fn residual(&self, x: &[f64], r: &mut [f64]) {
///         r[0] = x[0] * x[0] + x[1] * x[1] - 1.0;
///         r[1] = x[0] - x[1];
///     }
/// }
/// # fn main() -> Result<(), harvester_numerics::NumericsError> {
/// let solver = NewtonSolver::new(NewtonOptions::default());
/// let result = solver.solve(&Circle, &[1.0, 0.5])?;
/// assert!((result.solution[0] - result.solution[1]).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NewtonSolver {
    options: NewtonOptions,
}

impl NewtonSolver {
    /// Creates a solver with the given options.
    pub fn new(options: NewtonOptions) -> Self {
        NewtonSolver { options }
    }

    /// Returns the solver options.
    pub fn options(&self) -> &NewtonOptions {
        &self.options
    }

    /// Solves `F(x) = 0` starting from `initial_guess`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::NoConvergence`] if the iteration budget is
    /// exhausted, or [`NumericsError::SingularMatrix`] if the Jacobian cannot
    /// be factored.
    pub fn solve<S: NonlinearSystem + ?Sized>(
        &self,
        system: &S,
        initial_guess: &[f64],
    ) -> Result<NewtonResult, NumericsError> {
        let n = system.dimension();
        if initial_guess.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("initial guess of length {n}"),
                found: format!("length {}", initial_guess.len()),
            });
        }
        let mut x = initial_guess.to_vec();
        let mut residual = vec![0.0; n];
        let mut jacobian = Matrix::zeros(n, n);
        let mut trial = vec![0.0; n];
        let mut trial_residual = vec![0.0; n];

        system.residual(&x, &mut residual);
        let mut res_norm = norm_inf(&residual);

        for iteration in 0..self.options.max_iterations {
            if res_norm <= self.options.residual_tolerance {
                return Ok(NewtonResult {
                    solution: x,
                    iterations: iteration,
                    residual_norm: res_norm,
                });
            }
            jacobian.fill_zero();
            system.jacobian(&x, &mut jacobian);
            let rhs: Vec<f64> = residual.iter().map(|r| -r).collect();
            let delta = jacobian.solve(&rhs)?;

            // Damped line search: halve the step until the residual decreases
            // (or the damping floor is reached, in which case take the step
            // anyway — Newton is allowed transient growth far from the root).
            let mut damping = 1.0;
            loop {
                for i in 0..n {
                    trial[i] = x[i] + damping * delta[i];
                }
                system.residual(&trial, &mut trial_residual);
                let trial_norm = norm_inf(&trial_residual);
                if trial_norm < res_norm || damping <= self.options.min_damping {
                    x.copy_from_slice(&trial);
                    residual.copy_from_slice(&trial_residual);
                    res_norm = trial_norm;
                    break;
                }
                damping *= 0.5;
            }

            let step_norm = norm_inf(&delta) * damping;
            if step_norm <= self.options.step_tolerance
                && res_norm <= self.options.residual_tolerance.max(1e-6)
            {
                return Ok(NewtonResult {
                    solution: x,
                    iterations: iteration + 1,
                    residual_norm: res_norm,
                });
            }
        }

        if res_norm <= self.options.residual_tolerance * 10.0 {
            // Close enough: accept with a degraded tolerance rather than fail
            // the whole transient for a marginally converged step.
            return Ok(NewtonResult {
                solution: x,
                iterations: self.options.max_iterations,
                residual_norm: res_norm,
            });
        }
        Err(NumericsError::NoConvergence {
            iterations: self.options.max_iterations,
            residual: res_norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quadratic;

    impl NonlinearSystem for Quadratic {
        fn dimension(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], r: &mut [f64]) {
            r[0] = x[0] * x[0] - 2.0;
        }
        fn jacobian(&self, x: &[f64], j: &mut Matrix) {
            j[(0, 0)] = 2.0 * x[0];
        }
    }

    struct Coupled;

    impl NonlinearSystem for Coupled {
        fn dimension(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], r: &mut [f64]) {
            r[0] = x[0].exp() - x[1];
            r[1] = x[0] + x[1] - 2.0;
        }
    }

    #[test]
    fn solves_sqrt_two() {
        let solver = NewtonSolver::default();
        let result = solver.solve(&Quadratic, &[1.0]).unwrap();
        assert!((result.solution[0] - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert!(result.iterations < 10);
    }

    #[test]
    fn solves_with_finite_difference_jacobian() {
        let solver = NewtonSolver::default();
        let result = solver.solve(&Coupled, &[0.5, 1.0]).unwrap();
        let x = result.solution;
        assert!((x[0].exp() - x[1]).abs() < 1e-7);
        assert!((x[0] + x[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn converges_from_poor_guess_with_damping() {
        let solver = NewtonSolver::new(NewtonOptions {
            max_iterations: 200,
            ..NewtonOptions::default()
        });
        let result = solver.solve(&Quadratic, &[100.0]).unwrap();
        assert!((result.solution[0] - std::f64::consts::SQRT_2).abs() < 1e-8);
    }

    #[test]
    fn rejects_wrong_guess_length() {
        let solver = NewtonSolver::default();
        assert!(matches!(
            solver.solve(&Quadratic, &[1.0, 2.0]),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    struct NoRoot;

    impl NonlinearSystem for NoRoot {
        fn dimension(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], r: &mut [f64]) {
            r[0] = x[0] * x[0] + 1.0;
        }
    }

    #[test]
    fn reports_no_convergence_when_there_is_no_root() {
        let solver = NewtonSolver::new(NewtonOptions {
            max_iterations: 25,
            ..NewtonOptions::default()
        });
        assert!(matches!(
            solver.solve(&NoRoot, &[3.0]),
            Err(NumericsError::NoConvergence { .. })
        ));
    }

    #[test]
    fn finite_difference_jacobian_matches_analytic() {
        let mut fd = Matrix::zeros(1, 1);
        finite_difference_jacobian(&Quadratic, &[3.0], &mut fd);
        assert!((fd[(0, 0)] - 6.0).abs() < 1e-5);
    }
}
