//! Numerical foundations for the energy-harvester simulation stack.
//!
//! This crate provides the dependency-free numerical substrate that the
//! mixed-technology simulation kernel (`harvester-mna`) and the behavioural
//! device models are built on:
//!
//! * [`linalg`] — dense matrices/vectors and LU factorisation with partial
//!   pivoting (the fastest backend for the small systems assembled by modified
//!   nodal analysis of a single harvester).
//! * [`sparse`] — COO → CSR sparse matrices and a fill-pattern-reusing sparse
//!   LU ([`sparse::SparseLu`]): the symbolic analysis (pivot order, fill
//!   pattern, scatter map) is computed once and reused across the thousands of
//!   numerically-different but structurally-identical Jacobians a transient
//!   analysis produces.
//! * [`gmres`] — restarted GMRES with an allocation-reusing workspace, the
//!   Krylov backbone of the matrix-free shooting method (the operator is only
//!   ever applied to vectors, never formed).
//! * [`fault`] — deterministic, seedable fault injection
//!   ([`fault::FaultInjector`]) the solver layer consults at factorisation,
//!   residual and Krylov sites, so every recovery/fallback path is directly
//!   testable instead of only incidentally reachable.
//! * [`newton`] — damped Newton–Raphson for systems of nonlinear equations.
//! * [`ode`] — explicit and implicit initial-value-problem integrators
//!   (forward Euler, RK4, adaptive RKF45, semi-implicit Euler, backward Euler
//!   and trapezoidal rule), used both by the standalone behavioural models and
//!   as an independent cross-check of the circuit-level transient engine.
//! * [`interp`] — linear and monotone-cubic (PCHIP) interpolation, used to
//!   bridge the unspecified sections of the piecewise flux-linkage function.
//! * [`extrap`] — Newton divided-difference polynomial extrapolation over
//!   non-equidistant support points, the predictor of the adaptive
//!   (LTE-controlled) transient time-stepper.
//! * [`roots`] — scalar root bracketing (bisection, Brent), used e.g. to find
//!   the mechanical resonance of a generator design.
//! * [`stats`] — small statistics helpers (RMS, total harmonic distortion,
//!   linear regression) used by the experiment harness.
//! * [`complex`] — a minimal [`Complex64`](complex::Complex64) and the
//!   [`HarmonicSolver`](complex::HarmonicSolver) that solves `(G + jωC)x = b`
//!   frequency sweeps through the real `2n×2n` equivalent system, reusing
//!   the sparse pattern machinery across the sweep (AC small-signal
//!   analysis).
//!
//! # Example
//!
//! Solve a small linear system with the LU solver:
//!
//! ```
//! # use harvester_numerics::linalg::Matrix;
//! # fn main() -> Result<(), harvester_numerics::NumericsError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let x = a.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod extrap;
pub mod fault;
pub mod gmres;
pub mod interp;
pub mod linalg;
pub mod monodromy;
pub mod newton;
pub mod ode;
pub mod roots;
pub mod sparse;
pub mod stats;

mod error;

pub use error::NumericsError;
