//! Interpolation utilities.
//!
//! The analytical micro-generator model needs a continuous flux-linkage
//! function even though the paper only publishes two of its seven piecewise
//! sections; the missing sections are bridged with the monotone cubic
//! (Fritsch–Carlson / PCHIP) interpolant implemented here, which guarantees no
//! spurious oscillation between the published anchor points.

use crate::NumericsError;

/// Piecewise-linear interpolation over a table of `(x, y)` breakpoints.
///
/// # Example
///
/// ```
/// # use harvester_numerics::interp::LinearInterpolator;
/// # fn main() -> Result<(), harvester_numerics::NumericsError> {
/// let interp = LinearInterpolator::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0])?;
/// assert_eq!(interp.value(0.5), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterpolator {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterpolator {
    /// Creates an interpolator from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if fewer than two points are
    /// given, the lengths differ, or the abscissae are not strictly
    /// increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumericsError> {
        validate_breakpoints(&xs, &ys)?;
        Ok(LinearInterpolator { xs, ys })
    }

    /// Interpolated value at `x`; clamps outside the table range.
    pub fn value(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= *self.xs.last().unwrap() {
            return *self.ys.last().unwrap();
        }
        let hi = self.xs.partition_point(|&xi| xi <= x);
        let lo = hi - 1;
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// The abscissae of the table.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The ordinates of the table.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// Monotone cubic Hermite interpolation (Fritsch–Carlson, also known as
/// PCHIP): a C¹ interpolant that never overshoots monotone data.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneCubic {
    xs: Vec<f64>,
    ys: Vec<f64>,
    slopes: Vec<f64>,
}

impl MonotoneCubic {
    /// Creates the interpolant from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] under the same conditions as
    /// [`LinearInterpolator::new`].
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumericsError> {
        validate_breakpoints(&xs, &ys)?;
        let n = xs.len();
        let mut deltas = vec![0.0; n - 1];
        for i in 0..n - 1 {
            deltas[i] = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]);
        }
        let mut slopes = vec![0.0; n];
        slopes[0] = deltas[0];
        slopes[n - 1] = deltas[n - 2];
        for i in 1..n - 1 {
            if deltas[i - 1] * deltas[i] <= 0.0 {
                slopes[i] = 0.0;
            } else {
                // Weighted harmonic mean keeps the interpolant monotone.
                let w1 = 2.0 * (xs[i + 1] - xs[i]) + (xs[i] - xs[i - 1]);
                let w2 = (xs[i + 1] - xs[i]) + 2.0 * (xs[i] - xs[i - 1]);
                slopes[i] = (w1 + w2) / (w1 / deltas[i - 1] + w2 / deltas[i]);
            }
        }
        // Fritsch–Carlson limiter.
        for i in 0..n - 1 {
            if deltas[i] == 0.0 {
                slopes[i] = 0.0;
                slopes[i + 1] = 0.0;
            } else {
                let alpha = slopes[i] / deltas[i];
                let beta = slopes[i + 1] / deltas[i];
                let s = alpha * alpha + beta * beta;
                if s > 9.0 {
                    let tau = 3.0 / s.sqrt();
                    slopes[i] = tau * alpha * deltas[i];
                    slopes[i + 1] = tau * beta * deltas[i];
                }
            }
        }
        Ok(MonotoneCubic { xs, ys, slopes })
    }

    /// Creates the interpolant with caller-specified endpoint slopes, which
    /// lets the flux-linkage bridge match the analytic derivative of the
    /// published sections at the section boundaries.
    ///
    /// The requested slopes are honoured only as far as monotonicity allows:
    /// each is clamped into the Fritsch–Carlson box `[0, 3Δ]` of its end
    /// interval's secant slope `Δ` (a slope of opposite sign to the data
    /// becomes 0, a too-steep slope becomes `3Δ`). Writing the slopes in
    /// unclamped *after* the limiter ran used to let an end interval
    /// overshoot — exactly the spurious wiggle the monotone interpolant
    /// exists to prevent.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MonotoneCubic::new`].
    pub fn with_end_slopes(
        xs: Vec<f64>,
        ys: Vec<f64>,
        start_slope: f64,
        end_slope: f64,
    ) -> Result<Self, NumericsError> {
        let mut interp = MonotoneCubic::new(xs, ys)?;
        let n = interp.slopes.len();
        interp.slopes[0] = clamp_to_monotone_box(start_slope, interp.deltas(0));
        interp.slopes[n - 1] = clamp_to_monotone_box(end_slope, interp.deltas(n - 2));
        Ok(interp)
    }

    /// Secant slope of interval `i`.
    fn deltas(&self, i: usize) -> f64 {
        (self.ys[i + 1] - self.ys[i]) / (self.xs[i + 1] - self.xs[i])
    }

    /// Interpolated value at `x`; extrapolates linearly using the endpoint
    /// slopes outside the table range.
    pub fn value(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0] + self.slopes[0] * (x - self.xs[0]);
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1] + self.slopes[n - 1] * (x - self.xs[n - 1]);
        }
        let hi = self.xs.partition_point(|&xi| xi <= x);
        let lo = hi - 1;
        let h = self.xs[hi] - self.xs[lo];
        let t = (x - self.xs[lo]) / h;
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[lo]
            + h10 * h * self.slopes[lo]
            + h01 * self.ys[hi]
            + h11 * h * self.slopes[hi]
    }

    /// Derivative of the interpolant at `x`.
    pub fn derivative(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.slopes[0];
        }
        if x >= self.xs[n - 1] {
            return self.slopes[n - 1];
        }
        let hi = self.xs.partition_point(|&xi| xi <= x);
        let lo = hi - 1;
        let h = self.xs[hi] - self.xs[lo];
        let t = (x - self.xs[lo]) / h;
        let t2 = t * t;
        let dh00 = (6.0 * t2 - 6.0 * t) / h;
        let dh10 = 3.0 * t2 - 4.0 * t + 1.0;
        let dh01 = (-6.0 * t2 + 6.0 * t) / h;
        let dh11 = 3.0 * t2 - 2.0 * t;
        dh00 * self.ys[lo] + dh10 * self.slopes[lo] + dh01 * self.ys[hi] + dh11 * self.slopes[hi]
    }
}

/// Clamps a requested endpoint slope into the Fritsch–Carlson monotonicity
/// box of an interval with secant slope `delta`: `slope/delta` must lie in
/// `[0, 3]`. The box `0 ≤ α, β ≤ 3` is a sufficient monotonicity region
/// (Fritsch & Carlson 1980, §4), and the interval's interior slope already
/// satisfies `β ∈ [0, 3]` after the circle limiter in
/// [`MonotoneCubic::new`], so clamping the end slope alone keeps the end
/// interval monotone. A flat interval admits only a flat slope.
fn clamp_to_monotone_box(slope: f64, delta: f64) -> f64 {
    if delta == 0.0 {
        return 0.0;
    }
    let alpha = slope / delta;
    if alpha <= 0.0 {
        0.0
    } else if alpha > 3.0 {
        3.0 * delta
    } else {
        slope
    }
}

fn validate_breakpoints(xs: &[f64], ys: &[f64]) -> Result<(), NumericsError> {
    if xs.len() < 2 {
        return Err(NumericsError::InvalidArgument(
            "interpolation requires at least two breakpoints".to_string(),
        ));
    }
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidArgument(format!(
            "breakpoint lengths differ: {} abscissae vs {} ordinates",
            xs.len(),
            ys.len()
        )));
    }
    if xs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(NumericsError::InvalidArgument(
            "abscissae must be strictly increasing".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolation_hits_breakpoints() {
        let li = LinearInterpolator::new(vec![0.0, 1.0, 3.0], vec![1.0, 2.0, -2.0]).unwrap();
        assert_eq!(li.value(0.0), 1.0);
        assert_eq!(li.value(1.0), 2.0);
        assert_eq!(li.value(3.0), -2.0);
        assert_eq!(li.value(2.0), 0.0);
        assert_eq!(li.xs().len(), 3);
        assert_eq!(li.ys().len(), 3);
    }

    #[test]
    fn linear_interpolation_clamps() {
        let li = LinearInterpolator::new(vec![0.0, 1.0], vec![5.0, 6.0]).unwrap();
        assert_eq!(li.value(-10.0), 5.0);
        assert_eq!(li.value(10.0), 6.0);
    }

    #[test]
    fn rejects_bad_breakpoints() {
        assert!(LinearInterpolator::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterpolator::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterpolator::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(MonotoneCubic::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn monotone_cubic_interpolates_breakpoints() {
        let xs = vec![0.0, 1.0, 2.0, 4.0];
        let ys = vec![0.0, 1.0, 4.0, 16.0];
        let mc = MonotoneCubic::new(xs.clone(), ys.clone()).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((mc.value(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_cubic_preserves_monotonicity() {
        let mc = MonotoneCubic::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 0.1, 0.2, 5.0, 5.1])
            .unwrap();
        let mut prev = mc.value(0.0);
        let mut x = 0.0;
        while x <= 4.0 {
            let v = mc.value(x);
            assert!(v + 1e-12 >= prev, "interpolant must be non-decreasing");
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn monotone_cubic_derivative_is_consistent() {
        let mc = MonotoneCubic::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 8.0]).unwrap();
        let x = 1.3;
        let h = 1e-6;
        let numeric = (mc.value(x + h) - mc.value(x - h)) / (2.0 * h);
        assert!((mc.derivative(x) - numeric).abs() < 1e-5);
    }

    #[test]
    fn end_slopes_are_honoured() {
        let mc = MonotoneCubic::with_end_slopes(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0], 0.0, 3.0)
            .unwrap();
        assert!((mc.derivative(0.0) - 0.0).abs() < 1e-12);
        assert!((mc.derivative(2.0) - 3.0).abs() < 1e-12);
        // Outside the range it extrapolates with those slopes.
        assert!((mc.value(-1.0) - 0.0).abs() < 1e-12);
        assert!((mc.value(3.0) - (2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn end_slopes_cannot_break_monotonicity() {
        // Regression: `with_end_slopes` used to write the caller's slopes in
        // *after* the Fritsch–Carlson limiter had run, so a steep or
        // wrong-signed boundary derivative made the end interval overshoot —
        // on a flux-linkage-like bridge table the interpolant dipped below
        // the data it was supposed to bridge monotonically.
        let xs = vec![0.0, 0.5, 1.0, 2.0];
        let ys = vec![0.0, 0.05, 0.1, 1.0];
        for (start, end) in [(50.0, 50.0), (-10.0, -10.0), (0.0, 1e6)] {
            let mc = MonotoneCubic::with_end_slopes(xs.clone(), ys.clone(), start, end).unwrap();
            let mut prev = mc.value(0.0);
            let mut x = 0.0;
            while x <= 2.0 {
                let v = mc.value(x);
                assert!(
                    v + 1e-12 >= prev,
                    "slopes ({start}, {end}): overshoot at x={x}: {v} < {prev}"
                );
                prev = v;
                x += 1e-3;
            }
        }
        // Slopes inside the monotone box still pass through verbatim.
        let mc = MonotoneCubic::with_end_slopes(xs.clone(), ys.clone(), 0.05, 1.2).unwrap();
        assert_eq!(mc.derivative(0.0), 0.05);
        assert_eq!(mc.derivative(2.0), 1.2);
        // A flat end interval admits only a flat end slope.
        let mc = MonotoneCubic::with_end_slopes(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 1.0], 1.0, 2.0)
            .unwrap();
        assert_eq!(mc.derivative(2.0), 0.0);
    }
}
