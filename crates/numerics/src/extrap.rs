//! Polynomial extrapolation (prediction) via Newton divided differences.
//!
//! The adaptive transient engine warm-starts each Newton solve — and builds
//! its local-truncation-error estimate — from a low-order polynomial fitted
//! through the last few *accepted* solution points. The steps are not
//! equidistant (that is the whole point of adaptive stepping), so the
//! predictor is expressed in Newton divided-difference form, which handles
//! arbitrary abscissae without conditioning tricks.
//!
//! All helpers are allocation-free for the orders the engine uses (the
//! divided-difference table lives in a small stack buffer up to
//! [`MAX_POINTS`] support points).

/// Largest number of support points the stack-allocated helpers accept.
///
/// The transient predictor never uses more than three accepted states (a
/// quadratic predictor matches the order of the trapezoidal corrector), so
/// a small fixed bound keeps every helper allocation-free.
pub const MAX_POINTS: usize = 4;

/// Evaluates the polynomial through the points `(ts[k], ys[k])` at `t` using
/// Newton divided differences.
///
/// `ts` and `ys` must have the same length, between 1 and [`MAX_POINTS`]
/// entries, with pairwise-distinct abscissae. With one point this is the
/// constant predictor, with two the linear extrapolant, with three the
/// quadratic one.
///
/// # Panics
///
/// Panics if the lengths differ, are zero, exceed [`MAX_POINTS`], or two
/// abscissae coincide exactly.
///
/// # Example
///
/// ```
/// use harvester_numerics::extrap::extrapolate;
///
/// // A quadratic is reproduced exactly from any three of its points.
/// let f = |t: f64| 2.0 - 3.0 * t + 0.5 * t * t;
/// let ts = [0.0, 0.7, 1.1];
/// let ys = [f(0.0), f(0.7), f(1.1)];
/// assert!((extrapolate(&ts, &ys, 2.0) - f(2.0)).abs() < 1e-12);
/// ```
pub fn extrapolate(ts: &[f64], ys: &[f64], t: f64) -> f64 {
    let mut coeffs = [0.0f64; MAX_POINTS];
    let n = divided_differences(ts, ys, &mut coeffs);
    newton_eval(&ts[..n], &coeffs[..n], t)
}

/// Computes the Newton divided-difference coefficients of the interpolating
/// polynomial through `(ts[k], ys[k])` into `coeffs`, returning the number of
/// coefficients written (`ts.len()`).
///
/// `coeffs[k]` is the `k`-th order divided difference `f[t0, …, tk]`; the
/// polynomial is `coeffs[0] + coeffs[1]·(t − t0) + coeffs[2]·(t − t0)(t −
/// t1) + …` and is evaluated by [`newton_eval`].
///
/// # Panics
///
/// As [`extrapolate`]; additionally panics if `coeffs` is shorter than `ts`.
pub fn divided_differences(ts: &[f64], ys: &[f64], coeffs: &mut [f64]) -> usize {
    let n = ts.len();
    assert!(
        (1..=MAX_POINTS).contains(&n),
        "divided differences need 1..={MAX_POINTS} points, got {n}"
    );
    assert_eq!(n, ys.len(), "abscissae and ordinates must pair up");
    assert!(coeffs.len() >= n, "coefficient buffer too small");
    coeffs[..n].copy_from_slice(ys);
    for order in 1..n {
        // Work bottom-up so each slot is overwritten only after it has been
        // consumed by the previous order.
        for k in (order..n).rev() {
            let denom = ts[k] - ts[k - order];
            assert!(
                denom != 0.0,
                "divided differences need pairwise-distinct abscissae"
            );
            coeffs[k] = (coeffs[k] - coeffs[k - 1]) / denom;
        }
    }
    n
}

/// Evaluates a Newton-form polynomial (coefficients from
/// [`divided_differences`]) at `t` using Horner's scheme.
///
/// # Panics
///
/// Panics if `ts` and `coeffs` have different lengths or are empty.
pub fn newton_eval(ts: &[f64], coeffs: &[f64], t: f64) -> f64 {
    assert_eq!(ts.len(), coeffs.len(), "one coefficient per support point");
    assert!(!coeffs.is_empty(), "cannot evaluate an empty polynomial");
    let mut acc = coeffs[coeffs.len() - 1];
    for k in (0..coeffs.len() - 1).rev() {
        acc = coeffs[k] + (t - ts[k]) * acc;
    }
    acc
}

/// Extrapolates every column of a row-major history block to time `t`.
///
/// `rows` holds `ts.len()` state snapshots of `width` values each (oldest
/// first, flat row-major — exactly the layout of the transient engine's
/// predictor ring). For each of the `width` unknowns the polynomial through
/// its history values is evaluated at `t` and written to `out`.
///
/// # Panics
///
/// As [`extrapolate`]; additionally panics if `rows` is not
/// `ts.len() * width` long or `out` is shorter than `width`.
pub fn extrapolate_rows(ts: &[f64], rows: &[f64], width: usize, t: f64, out: &mut [f64]) {
    let n = ts.len();
    assert!(
        (1..=MAX_POINTS).contains(&n),
        "row extrapolation needs 1..={MAX_POINTS} snapshots, got {n}"
    );
    assert_eq!(rows.len(), n * width, "history block has the wrong shape");
    assert!(out.len() >= width, "output buffer too small");
    let mut ys = [0.0f64; MAX_POINTS];
    let mut coeffs = [0.0f64; MAX_POINTS];
    for col in 0..width {
        for (k, y) in ys[..n].iter_mut().enumerate() {
            *y = rows[k * width + col];
        }
        divided_differences(ts, &ys[..n], &mut coeffs);
        out[col] = newton_eval(ts, &coeffs[..n], t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_linear_and_quadratic_predictors_are_exact() {
        // One point: constant.
        assert_eq!(extrapolate(&[1.0], &[4.5], 10.0), 4.5);
        // Two points: linear.
        let lin = extrapolate(&[0.0, 2.0], &[1.0, 5.0], 3.0);
        assert!((lin - 7.0).abs() < 1e-12);
        // Three non-uniform points: quadratic, reproduced exactly.
        let f = |t: f64| -1.0 + 4.0 * t - 2.5 * t * t;
        let ts = [0.1, 0.35, 0.9];
        let ys = [f(0.1), f(0.35), f(0.9)];
        for t in [-1.0, 0.0, 1.3, 2.0] {
            assert!((extrapolate(&ts, &ys, t) - f(t)).abs() < 1e-10);
        }
    }

    #[test]
    fn extrapolation_error_shrinks_with_the_spacing() {
        // On a smooth non-polynomial function the quadratic predictor's
        // one-step-ahead error must scale like h³.
        let f = |t: f64| (3.0 * t).sin();
        let err = |h: f64| {
            let ts = [0.0, h, 2.0 * h];
            let ys = [f(ts[0]), f(ts[1]), f(ts[2])];
            (extrapolate(&ts, &ys, 3.0 * h) - f(3.0 * h)).abs()
        };
        let e1 = err(0.1);
        let e2 = err(0.05);
        assert!(
            e2 < e1 / 6.0,
            "halving h must shrink the error ~8x: {e1} vs {e2}"
        );
    }

    #[test]
    fn row_extrapolation_matches_the_scalar_path() {
        let ts = [0.0, 0.5, 1.25];
        // Two unknowns with different dynamics, flattened row-major.
        let col0 = |t: f64| 2.0 * t + 1.0;
        let col1 = |t: f64| t * t;
        let rows: Vec<f64> = ts.iter().flat_map(|&t| [col0(t), col1(t)]).collect();
        let mut out = [0.0f64; 2];
        extrapolate_rows(&ts, &rows, 2, 2.0, &mut out);
        assert!((out[0] - col0(2.0)).abs() < 1e-12);
        assert!((out[1] - col1(2.0)).abs() < 1e-12);

        let scalar0 = extrapolate(&ts, &[col0(0.0), col0(0.5), col0(1.25)], 2.0);
        assert_eq!(out[0], scalar0);
    }

    #[test]
    #[should_panic(expected = "pairwise-distinct")]
    fn coincident_abscissae_panic() {
        let _ = extrapolate(&[1.0, 1.0], &[0.0, 1.0], 2.0);
    }

    #[test]
    #[should_panic(expected = "points")]
    fn too_many_points_panic() {
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = ts;
        let _ = extrapolate(&ts, &ys, 5.0);
    }
}
