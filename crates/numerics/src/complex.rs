//! Minimal complex arithmetic and the frequency-sweep linear solver behind
//! AC small-signal analysis.
//!
//! The MNA engine linearises a circuit at its operating point into a
//! conductance matrix `G` and a susceptance (charge/flux derivative) matrix
//! `C`; the small-signal response at angular frequency `ω` solves
//!
//! ```text
//! (G + jωC) · x = b
//! ```
//!
//! with complex unknowns and excitation. Rather than introduce a complex
//! factorisation, [`HarmonicSolver`] maps each solve onto the equivalent
//! real system of twice the dimension,
//!
//! ```text
//! [ G   -ωC ] [ Re x ]   [ Re b ]
//! [ ωC   G  ] [ Im x ] = [ Im b ]
//! ```
//!
//! so both existing real backends apply unchanged: dense partial-pivot LU
//! for small circuits, and the fill-pattern-reusing [`SparseLu`] for large
//! ones — the `2n×2n` sparsity pattern is built **once** from the nonzero
//! union of `G` and `C`, symbolically analysed once, and only numerically
//! refactored as the sweep moves from frequency to frequency.

use crate::linalg::Matrix;
use crate::sparse::{SparseLu, SparseMatrix, TripletMatrix};
use crate::NumericsError;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// Covers exactly what AC analysis needs — arithmetic, polar conversion,
/// magnitude and phase — without pulling in an external crate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Builds a complex number from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Builds a complex number from polar form: `r·e^{jθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`, computed with `hypot` for overflow safety.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (no square root).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// True when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im < 0.0 {
            write!(f, "{}-{}j", self.re, -self.im)
        } else {
            write!(f, "{}+{}j", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        // Smith's algorithm: scale by the larger component to avoid
        // overflow/underflow in the naive |rhs|² denominator.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

/// Solves `(G + jωC)·x = b` for a sweep of frequencies, reusing as much
/// factorisation work as each backend allows.
///
/// Construct once per (operating point, circuit) pair with
/// [`HarmonicSolver::dense`] or [`HarmonicSolver::sparse`], then call
/// [`HarmonicSolver::solve`] per frequency. Both constructors take dense
/// `G`/`C` (that is how the MNA engine extracts them); the sparse backend
/// harvests their nonzero union into a fixed `2n×2n` pattern and reuses its
/// symbolic analysis across the whole sweep.
#[derive(Debug)]
pub struct HarmonicSolver {
    n: usize,
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    Dense {
        g: Matrix,
        c: Matrix,
        scratch: Matrix,
    },
    Sparse {
        /// Nonzero entries of `G` as `(row, col, value)`.
        g_entries: Vec<(usize, usize, f64)>,
        /// Nonzero entries of `C` as `(row, col, value)`.
        c_entries: Vec<(usize, usize, f64)>,
        /// The `2n×2n` real-equivalent matrix over the fixed union pattern.
        matrix: SparseMatrix,
        lu: Box<SparseLu>,
    },
}

impl HarmonicSolver {
    /// Builds a dense-backend solver. Each [`solve`](Self::solve) assembles
    /// the `2n×2n` real-equivalent system and factors it with partial-pivot
    /// LU — the right choice for the small matrices a single harvester
    /// produces.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] unless `G` and `C` are
    /// square with identical dimensions.
    pub fn dense(g: &Matrix, c: &Matrix) -> Result<Self, NumericsError> {
        let n = check_shapes(g, c)?;
        let mut own_g = Matrix::zeros(n, n);
        own_g.copy_from(g);
        let mut own_c = Matrix::zeros(n, n);
        own_c.copy_from(c);
        Ok(HarmonicSolver {
            n,
            backend: Backend::Dense {
                g: own_g,
                c: own_c,
                scratch: Matrix::zeros(2 * n, 2 * n),
            },
        })
    }

    /// Builds a sparse-backend solver: the `2n×2n` sparsity pattern (the
    /// nonzero union of `G` and `C`, plus an always-present diagonal for
    /// pivoting) is assembled and symbolically analysed **once**; each
    /// [`solve`](Self::solve) only refills values and numerically refactors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] unless `G` and `C` are
    /// square with identical dimensions, or a factorisation error if the
    /// pattern is structurally singular at `ω = 1`.
    pub fn sparse(g: &Matrix, c: &Matrix) -> Result<Self, NumericsError> {
        let n = check_shapes(g, c)?;
        let harvest = |m: &Matrix| -> Vec<(usize, usize, f64)> {
            let mut entries = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if m[(i, j)] != 0.0 {
                        entries.push((i, j, m[(i, j)]));
                    }
                }
            }
            entries
        };
        let g_entries = harvest(g);
        let c_entries = harvest(c);

        // Fixed pattern: G entries land in both diagonal blocks, C entries
        // in both off-diagonal blocks, and every diagonal position exists so
        // the elimination always has a pivot slot (explicit zeros are kept
        // as pattern entries by the CSR builder).
        let mut triplets = TripletMatrix::new(2 * n, 2 * n);
        for i in 0..2 * n {
            triplets.push(i, i, 0.0);
        }
        for &(i, j, _) in &g_entries {
            triplets.push(i, j, 0.0);
            triplets.push(i + n, j + n, 0.0);
        }
        for &(i, j, _) in &c_entries {
            triplets.push(i, j + n, 0.0);
            triplets.push(i + n, j, 0.0);
        }
        let mut matrix = triplets.to_csr();
        fill_real_equivalent(&mut matrix, n, &g_entries, &c_entries, 1.0);
        let lu = Box::new(SparseLu::new(&matrix)?);
        Ok(HarmonicSolver {
            n,
            backend: Backend::Sparse {
                g_entries,
                c_entries,
                matrix,
                lu,
            },
        })
    }

    /// The system dimension `n` (the complex unknown count, not `2n`).
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Solves `(G + jωC)·x = b` at angular frequency `omega` (rad/s).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b` has the wrong
    /// length, or a factorisation error if the system is singular at this
    /// frequency.
    pub fn solve(&mut self, omega: f64, b: &[Complex64]) -> Result<Vec<Complex64>, NumericsError> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        let mut rhs = vec![0.0; 2 * n];
        for (k, z) in b.iter().enumerate() {
            rhs[k] = z.re;
            rhs[k + n] = z.im;
        }
        let xy = match &mut self.backend {
            Backend::Dense { g, c, scratch } => {
                scratch.fill_zero();
                for i in 0..n {
                    for j in 0..n {
                        let (gij, cij) = (g[(i, j)], c[(i, j)]);
                        scratch.add_at(i, j, gij);
                        scratch.add_at(i + n, j + n, gij);
                        scratch.add_at(i, j + n, -omega * cij);
                        scratch.add_at(i + n, j, omega * cij);
                    }
                }
                scratch.solve(&rhs)?
            }
            Backend::Sparse {
                g_entries,
                c_entries,
                matrix,
                lu,
            } => {
                fill_real_equivalent(matrix, n, g_entries, c_entries, omega);
                // `update` retries with a fresh pivot order if the one from
                // construction went numerically stale at this frequency.
                lu.update(matrix)?;
                lu.solve(&rhs)?
            }
        };
        Ok((0..n).map(|k| Complex64::new(xy[k], xy[k + n])).collect())
    }
}

fn check_shapes(g: &Matrix, c: &Matrix) -> Result<usize, NumericsError> {
    if !g.is_square() || g.rows() != c.rows() || g.cols() != c.cols() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("square C matching {}x{} G", g.rows(), g.cols()),
            found: format!("{}x{} C", c.rows(), c.cols()),
        });
    }
    if g.rows() == 0 {
        return Err(NumericsError::InvalidArgument(
            "harmonic system must have at least one unknown".to_string(),
        ));
    }
    Ok(g.rows())
}

/// Refills the fixed-pattern real-equivalent matrix with the block values at
/// angular frequency `omega`.
fn fill_real_equivalent(
    matrix: &mut SparseMatrix,
    n: usize,
    g_entries: &[(usize, usize, f64)],
    c_entries: &[(usize, usize, f64)],
    omega: f64,
) {
    matrix.fill_zero();
    for &(i, j, v) in g_entries {
        matrix.add_at(i, j, v);
        matrix.add_at(i + n, j + n, v);
    }
    for &(i, j, v) in c_entries {
        matrix.add_at(i, j + n, -omega * v);
        matrix.add_at(i + n, j, omega * v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn arithmetic_matches_hand_results() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        let q = a / b;
        assert!(
            close(q * b, a, 1e-14),
            "division must invert multiplication"
        );
        assert_eq!(-a + a, Complex64::ZERO);
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
        assert!((a.abs() - 5f64.sqrt()).abs() < 1e-15);
        assert!((a.norm_sqr() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn polar_round_trips() {
        let z = Complex64::from_polar(2.0, 0.75);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.75).abs() < 1e-14);
    }

    #[test]
    fn division_survives_extreme_magnitudes() {
        let tiny = Complex64::new(1e-300, 1e-300);
        let q = tiny / tiny;
        assert!(close(q, Complex64::ONE, 1e-12), "got {q}");
        let big = Complex64::new(1e300, -1e300);
        let q = big / big;
        assert!(close(q, Complex64::ONE, 1e-12), "got {q}");
    }

    /// Single RC low-pass: node equation `(1/R + jωC)·v = 1/R · vin` has the
    /// textbook solution `v = vin / (1 + jωRC)`.
    fn rc_case(solver: &mut HarmonicSolver, r: f64, cap: f64) {
        for omega in [0.0, 1.0, 1.0 / (r * cap), 1e6] {
            let x = solver
                .solve(omega, &[Complex64::new(1.0 / r, 0.0)])
                .expect("RC system is regular");
            let expected = Complex64::ONE / Complex64::new(1.0, omega * r * cap);
            assert!(
                close(x[0], expected, 1e-12 * expected.abs().max(1.0)),
                "omega {omega}: {} vs {expected}",
                x[0]
            );
        }
    }

    #[test]
    fn dense_backend_solves_the_rc_divider() {
        let (r, cap) = (1e3, 1e-6);
        let g = Matrix::from_rows(&[&[1.0 / r]]);
        let c = Matrix::from_rows(&[&[cap]]);
        rc_case(&mut HarmonicSolver::dense(&g, &c).unwrap(), r, cap);
    }

    #[test]
    fn sparse_backend_solves_the_rc_divider() {
        let (r, cap) = (1e3, 1e-6);
        let g = Matrix::from_rows(&[&[1.0 / r]]);
        let c = Matrix::from_rows(&[&[cap]]);
        rc_case(&mut HarmonicSolver::sparse(&g, &c).unwrap(), r, cap);
    }

    #[test]
    fn backends_agree_on_a_random_regular_system() {
        // Deterministic "random" fill from a simple LCG; diagonally
        // dominated so both factorisations stay well conditioned.
        let n = 7;
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 0.5
        };
        let mut g = Matrix::zeros(n, n);
        let mut c = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                // Sparse-ish fill: skip ~half the off-diagonals.
                if i == j || next() > 0.0 {
                    g.add_at(i, j, next());
                    c.add_at(i, j, next());
                }
            }
            g.add_at(i, i, 4.0);
            c.add_at(i, i, 4.0);
        }
        let b: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new(next(), k as f64 * 0.1))
            .collect();
        let mut dense = HarmonicSolver::dense(&g, &c).unwrap();
        let mut sparse = HarmonicSolver::sparse(&g, &c).unwrap();
        for omega in [0.0, 0.3, 2.0, 50.0] {
            let xd = dense.solve(omega, &b).unwrap();
            let xs = sparse.solve(omega, &b).unwrap();
            for (a, b) in xd.iter().zip(&xs) {
                assert!(close(*a, *b, 1e-9), "backends disagree: {a} vs {b}");
            }
        }
    }

    #[test]
    fn shape_mismatches_are_reported() {
        let g = Matrix::zeros(2, 2);
        let c = Matrix::zeros(3, 3);
        assert!(HarmonicSolver::dense(&g, &c).is_err());
        assert!(HarmonicSolver::sparse(&g, &c).is_err());
    }
}
