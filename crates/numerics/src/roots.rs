//! Scalar root finding (bisection and Brent's method).
//!
//! Used by the harvester design helpers, e.g. to locate the mechanical
//! resonance of a generator design or the excitation amplitude that drives
//! the coil to a prescribed displacement.

use crate::NumericsError;

/// Options controlling the bracketing root finders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the abscissa.
    pub x_tolerance: f64,
    /// Absolute tolerance on |f(x)|.
    pub f_tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
}

impl Default for RootOptions {
    fn default() -> Self {
        RootOptions {
            x_tolerance: 1e-12,
            f_tolerance: 1e-12,
            max_iterations: 200,
        }
    }
}

fn check_bracket(fa: f64, fb: f64) -> Result<(), NumericsError> {
    if fa * fb > 0.0 {
        return Err(NumericsError::InvalidArgument(format!(
            "interval does not bracket a root: f(a)={fa:.3e}, f(b)={fb:.3e}"
        )));
    }
    Ok(())
}

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if the interval does not
/// bracket a sign change and [`NumericsError::NoConvergence`] if the
/// iteration budget is exhausted.
pub fn bisection<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    options: &RootOptions,
) -> Result<f64, NumericsError> {
    let (mut lo, mut hi) = if a < b { (a, b) } else { (b, a) };
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo.abs() <= options.f_tolerance {
        return Ok(lo);
    }
    if fhi.abs() <= options.f_tolerance {
        return Ok(hi);
    }
    check_bracket(flo, fhi)?;
    for _ in 0..options.max_iterations {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid.abs() <= options.f_tolerance || (hi - lo) * 0.5 < options.x_tolerance {
            return Ok(mid);
        }
        if flo * fmid < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fmid;
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: options.max_iterations,
        residual: hi - lo,
    })
}

/// Finds a root of `f` in `[a, b]` by Brent's method (inverse quadratic
/// interpolation with a bisection fallback).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if the interval does not
/// bracket a sign change and [`NumericsError::NoConvergence`] if the
/// iteration budget is exhausted.
pub fn brent<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    options: &RootOptions,
) -> Result<f64, NumericsError> {
    let mut a = a;
    let mut b = b;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa.abs() <= options.f_tolerance {
        return Ok(a);
    }
    if fb.abs() <= options.f_tolerance {
        return Ok(b);
    }
    check_bracket(fa, fb)?;
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..options.max_iterations {
        if fb.abs() <= options.f_tolerance || (b - a).abs() < options.x_tolerance {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lower = (3.0 * a + b) / 4.0;
        let cond1 =
            !((s > lower.min(b) && s < lower.max(b)) || (s > b.min(lower) && s < b.max(lower)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < options.x_tolerance;
        let cond5 = !mflag && (c - d).abs() < options.x_tolerance;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: options.max_iterations,
        residual: fb.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_finds_sqrt_two() {
        let root = bisection(|x| x * x - 2.0, 0.0, 2.0, &RootOptions::default()).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_cosine_root() {
        let root = brent(|x| x.cos(), 1.0, 2.0, &RootOptions::default()).unwrap();
        assert!((root - std::f64::consts::FRAC_PI_2).abs() < 1e-10);
    }

    #[test]
    fn brent_converges_faster_than_bisection_budget() {
        let opts = RootOptions {
            max_iterations: 60,
            ..RootOptions::default()
        };
        let root = brent(|x| x.powi(3) - 2.0 * x - 5.0, 2.0, 3.0, &opts).unwrap();
        assert!((root.powi(3) - 2.0 * root - 5.0).abs() < 1e-9);
    }

    #[test]
    fn non_bracketing_interval_is_rejected() {
        assert!(bisection(|x| x * x + 1.0, -1.0, 1.0, &RootOptions::default()).is_err());
        assert!(brent(|x| x * x + 1.0, -1.0, 1.0, &RootOptions::default()).is_err());
    }

    #[test]
    fn endpoint_root_is_returned_immediately() {
        let root = bisection(|x| x, 0.0, 1.0, &RootOptions::default()).unwrap();
        assert_eq!(root, 0.0);
        let root = brent(|x| x - 1.0, 0.0, 1.0, &RootOptions::default()).unwrap();
        assert_eq!(root, 1.0);
    }
}
