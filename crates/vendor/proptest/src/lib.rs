//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! This build environment has no network access, so the workspace vendors the
//! API subset its tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` attribute, range strategies over `f64`/`usize`,
//! [`collection::vec`], and the [`prop_assert!`] / [`prop_assume!`] macros.
//! Inputs are drawn from a deterministic per-test generator, so failures
//! reproduce exactly; unlike real proptest there is no shrinking — a failure
//! reports the case number and message only. Swap the workspace `proptest`
//! path dependency for the registry crate to restore shrinking; no call site
//! needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was vetoed by [`prop_assume!`]; it does not count against
    /// the budget.
    Reject(String),
    /// A [`prop_assert!`] failed.
    Fail(String),
}

/// The deterministic input generator behind every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating test inputs, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        self.start + hi as usize
    }
}

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of a fixed length.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives one property: draws cases until `config.cases` of them are accepted
/// or a case fails. Called by the [`proptest!`] expansion — not public API in
/// real proptest, but harmless to expose here.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // A fixed per-test seed keeps every run of every property reproducible.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    let mut rng = TestRng::new(seed);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(64).max(1024);
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property `{name}` rejected too many inputs \
             ({accepted}/{} accepted after {attempts} attempts)",
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!("property `{name}` failed at case {attempts}: {message}")
            }
        }
    }
}

/// Fails the current case unless `cond` holds, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {{
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds, mirroring
/// `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {{
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(::core::stringify!($cond)),
            ));
        }
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(&config, ::core::stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..5.0, n in 1usize..9) {
            prop_assert!((-3.0..5.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x > 0.25);
            prop_assert!(x > 0.25, "assume must have filtered x, got {x}");
        }

        #[test]
        fn vec_strategy_yields_fixed_length(values in collection::vec(0.0f64..1.0, 7)) {
            prop_assert!(values.len() == 7);
            prop_assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_proptest(
            &ProptestConfig::with_cases(8),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> {
                prop_assert!(false, "deliberate failure");
                Ok(())
            },
        );
    }
}
