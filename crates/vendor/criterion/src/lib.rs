//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This build environment has no network access, so the workspace vendors the
//! API subset its benches use: [`Criterion::benchmark_group`], the group
//! configuration setters, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's full statistical
//! machinery it times `sample_size` batches (bounded by `measurement_time`)
//! and prints min/mean/max per benchmark — enough for quick local comparisons
//! and for CI to keep the bench targets compiling. Swap the workspace
//! `criterion` path dependency for the registry crate for real statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement strategies, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock time measurement (the only strategy this stand-in offers).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(5),
            _criterion: PhantomData,
        }
    }
}

/// A group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long to run the routine untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Caps the total time spent collecting timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Times one benchmark routine and prints a summary line.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };

        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed);
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }

        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "  {}/{id}: {mean:?} (min {min:?}, max {max:?}, {} samples)",
            self.name,
            samples.len()
        );
        self
    }

    /// Closes the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// The per-iteration timer handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`; the routine's output is passed
    /// through [`black_box`] so the optimiser cannot delete it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }
}

/// Declares a function running a list of benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
