//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This build environment has no network access, so the workspace vendors the
//! small API subset it actually uses: [`Rng::gen_range`] over `f64`/`usize`
//! ranges, [`Rng::gen_bool`], and a seedable [`rngs::StdRng`]. The generator
//! is xoshiro256** seeded through SplitMix64 — deterministic for a given
//! seed, which is all the optimisers and the synthetic experimental reference
//! require. Swap the workspace `rand` path dependency for the registry crate
//! to use the real implementation; no call site needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Sampling of a uniform value from a range, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniformly-distributed mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift bounded sampling (Lemire); the slight bias without
        // rejection is negligible at the range sizes used here.
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        self.start + hi as usize
    }
}

/// The user-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen_range(0.0..1.0) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator — the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&x));
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((0.28..0.32).contains(&(hits as f64 / 100_000.0)));
    }
}
