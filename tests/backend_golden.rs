//! Golden regression tests over the full harvester fixtures: the dense and
//! sparse solver backends must produce matching node-voltage traces and
//! identical step counts on the paper's transformer-booster and
//! Villard-multiplier systems.

use energy_harvester::mna::transient::{SolverBackend, TransientAnalysis, TransientOptions};
use energy_harvester::models::{GeneratorModel, HarvesterConfig};

const TRACE_TOLERANCE: f64 = 1e-8;

fn compare_backends_on(config: HarvesterConfig, t_stop: f64, dt: f64) {
    let (circuit, nodes) = config.build();
    let run = |backend| {
        TransientAnalysis::new(TransientOptions {
            t_stop,
            dt,
            backend,
            ..TransientOptions::default()
        })
        .run(&circuit)
        .expect("harvester fixture must simulate on both backends")
    };
    let dense = run(SolverBackend::Dense);
    let sparse = run(SolverBackend::Sparse);

    assert_eq!(
        dense.statistics().accepted_steps,
        sparse.statistics().accepted_steps,
        "step counts must not depend on the backend"
    );
    assert_eq!(
        dense.statistics().rejected_steps,
        sparse.statistics().rejected_steps
    );
    assert_eq!(dense.len(), sparse.len());

    for node in [nodes.generator_output, nodes.storage] {
        let vd = dense.voltage(node);
        let vs = sparse.voltage(node);
        for (k, (d, s)) in vd.iter().zip(vs.iter()).enumerate() {
            assert!(
                (d - s).abs() <= TRACE_TOLERANCE,
                "node {node} sample {k}: dense {d} vs sparse {s}"
            );
        }
    }

    // The sparse run must amortise its single symbolic factorisation over
    // the whole transient.
    let stats = sparse.statistics();
    assert!(
        stats.full_factorizations * 10 <= stats.linear_solves,
        "sparse backend must refactor, not refactorise from scratch: {} full of {} solves",
        stats.full_factorizations,
        stats.linear_solves
    );
}

/// Transformer-booster harvester (the paper's Fig. 9 system).
#[test]
fn transformer_harvester_backends_agree() {
    let mut config = HarvesterConfig::unoptimised();
    config.storage.capacitance = 100e-6;
    compare_backends_on(config, 0.1, 1e-4);
}

/// Villard-multiplier harvester (the paper's Fig. 4 booster, 6 stages) —
/// the largest fixture circuit in the repository.
#[test]
fn villard_harvester_backends_agree() {
    let mut config = HarvesterConfig::model_comparison(GeneratorModel::Analytical);
    config.storage.capacitance = 100e-6;
    compare_backends_on(config, 0.1, 1e-4);
}

/// Mechanical probes (displacement, velocity, coil current) must match
/// across backends too — they are solved in the same global system.
#[test]
fn mechanical_probes_agree_across_backends() {
    let mut config = HarvesterConfig::unoptimised();
    config.storage.capacitance = 100e-6;
    let (circuit, _) = config.build();
    let run = |backend| {
        TransientAnalysis::new(TransientOptions {
            t_stop: 0.05,
            dt: 1e-4,
            backend,
            ..TransientOptions::default()
        })
        .run(&circuit)
        .unwrap()
    };
    let dense = run(SolverBackend::Dense);
    let sparse = run(SolverBackend::Sparse);
    for unknown in ["i", "z", "u"] {
        let pd = dense.probe("generator", unknown).unwrap();
        let ps = sparse.probe("generator", unknown).unwrap();
        for (d, s) in pd.iter().zip(ps.iter()) {
            assert!(
                (d - s).abs() <= TRACE_TOLERANCE,
                "generator.{unknown}: dense {d} vs sparse {s}"
            );
        }
    }
}
