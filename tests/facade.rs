//! Facade-level smoke tests: the re-export paths advertised in the crate
//! docs must keep resolving, and the chromosome encoding must round-trip the
//! paper's baseline design.

use energy_harvester::experiments::{decode, encode, paper_bounds, GENE_COUNT};
use energy_harvester::models::{BoosterConfig, HarvesterConfig};

/// Every documented re-export path resolves to the expected workspace crate.
/// Referencing one item through each path is enough — if a re-export is
/// dropped or renamed, this test stops compiling.
#[test]
fn documented_reexport_paths_resolve() {
    let _config: energy_harvester::models::HarvesterConfig = HarvesterConfig::unoptimised();
    let _options = energy_harvester::mna::transient::TransientOptions::default();
    let _matrix = energy_harvester::numerics::linalg::Matrix::identity(2);
    let _ga_options = energy_harvester::optim::GaOptions::paper();
    let _bounds = energy_harvester::experiments::paper_bounds();
    // The parallel batch-evaluation engine.
    let _parallelism = energy_harvester::optim::Parallelism::Threads(4);
    let _evaluator = energy_harvester::optim::ParallelEvaluator::serial();
    let _sweep = energy_harvester::experiments::SweepOptions::coarse();
    let _workspace = energy_harvester::models::EnvelopeWorkspace::new();
    // The periodic steady-state (shooting) engine.
    let _steady_state = energy_harvester::models::SteadyState::shooting();
    let _pss_options = energy_harvester::mna::shooting::SteadyStateOptions::new(1e-3);
    let _monodromy = energy_harvester::numerics::monodromy::MonodromyAccumulator::new(2);
}

/// `encode` → `decode` reproduces the Table 1 design: the baseline genes lie
/// inside the optimisation bounds, so no clamp or physical-consistency floor
/// may move them.
#[test]
fn unoptimised_config_round_trips_through_encode_decode() {
    let base = HarvesterConfig::unoptimised();
    let genes = encode(&base);
    assert_eq!(genes.len(), GENE_COUNT);

    let bounds = paper_bounds();
    for ((gene, lo), hi) in genes.iter().zip(bounds.lower()).zip(bounds.upper()) {
        assert!(
            *gene >= *lo && *gene <= *hi,
            "baseline gene {gene} outside the optimisation bounds [{lo}, {hi}]"
        );
    }

    let decoded = decode(&base, &genes);
    let recovered = encode(&decoded);
    for (index, (a, b)) in genes.iter().zip(recovered.iter()).enumerate() {
        assert!(
            (a - b).abs() <= 1e-12 * a.abs().max(1.0),
            "gene {index} did not round-trip: encoded {a}, recovered {b}"
        );
    }

    assert!(
        matches!(decoded.booster, BoosterConfig::Transformer(_)),
        "decode must preserve the transformer booster of the baseline design"
    );
    assert_eq!(decoded.storage, base.storage);
    assert_eq!(decoded.model, base.model);
}
