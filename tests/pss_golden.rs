//! End-to-end acceptance suite for the shooting-Newton periodic steady-state
//! engine on the paper's harvester fixtures.
//!
//! The headline guarantee: on the Fig. 5 Villard fixture, the envelope
//! measurement under the shooting default reproduces the charging
//! characteristic of a **converged** brute-force settling reference (a
//! 20×-longer fixed-step settle — the production 60-cycle budget itself is
//! still far from the periodic orbit at mid storage voltages) to within
//! 1e-6 A, while integrating **at least 4× fewer excitation cycles** than
//! the production settling budget. The heavy comparisons are `#[ignore]`d in
//! debug builds and run in the release-mode CI job.

use energy_harvester::models::envelope::{EnvelopeOptions, EnvelopeSimulator, SteadyState};
use energy_harvester::models::system::HarvesterConfig;
use energy_harvester::models::{GeneratorModel, StepControl};
use harvester_bench::pss_acceptance_envelope as envelope_options;
use proptest::prelude::*;

/// A settling configuration long enough to be an accuracy yardstick: fixed
/// stepping (the same discretisation family the shooting engine integrates
/// with) and a 20× settle budget.
fn converged_reference(steady_state_settle: f64) -> EnvelopeOptions {
    EnvelopeOptions {
        settle_cycles: steady_state_settle,
        step_control: StepControl::Fixed,
        ..envelope_options(SteadyState::BruteForce)
    }
}

/// The acceptance criterion of the shooting PR, asserted with slack:
/// ≥4× fewer integrated excitation cycles than the production settling
/// budget (measured margin ≈ 14×: ~5 cycles/point vs 70), with every
/// measured charging current within 1e-6 A of the converged settling
/// reference (measured margin ≈ 9×: ≈1.1e-7 A).
#[test]
#[cfg_attr(debug_assertions, ignore = "converged reference is release-scale work")]
fn shooting_cuts_integrated_cycles_4x_on_the_villard_envelope() {
    let config = HarvesterConfig::model_comparison(GeneratorModel::Analytical);
    let production =
        EnvelopeSimulator::new(config.clone(), envelope_options(SteadyState::BruteForce))
            .measure_characteristic()
            .unwrap();
    let reference = EnvelopeSimulator::new(config.clone(), converged_reference(1200.0))
        .measure_characteristic()
        .unwrap();
    let shooting = EnvelopeSimulator::new(config, envelope_options(SteadyState::default()))
        .measure_characteristic()
        .unwrap();

    for ((v, i_ref), (_, i_shoot)) in reference.points().zip(shooting.points()) {
        assert!(
            (i_shoot - i_ref).abs() <= 1e-6,
            "shooting current at {v} V must stay within 1e-6 A of the converged settling \
             reference: {i_shoot:.6e} vs {i_ref:.6e}"
        );
    }

    let shooting_cycles = shooting.statistics().integrated_cycles;
    let production_cycles = production.statistics().integrated_cycles;
    assert!(
        shooting_cycles * 4 <= production_cycles,
        "shooting must integrate at least 4x fewer excitation cycles per envelope point than \
         the production settling budget: {shooting_cycles} vs {production_cycles} \
         ({:.1}x)",
        production_cycles as f64 / shooting_cycles as f64
    );
    assert!(shooting.statistics().shooting_iterations > 0);
    assert_eq!(production.statistics().shooting_iterations, 0);
    // The converged reference also demonstrates *why* shooting is the
    // default: matching its accuracy by settling costs a further order of
    // magnitude beyond the production budget.
    assert!(reference.statistics().integrated_cycles > 10 * shooting_cycles);
}

/// The transformer-booster harvester (narrow rectifier conduction pulses)
/// must come out equally ahead and stay within the same accuracy envelope
/// (slightly wider tolerance: its converged reference settles more slowly).
#[test]
#[cfg_attr(debug_assertions, ignore = "converged reference is release-scale work")]
fn shooting_wins_on_the_transformer_envelope_too() {
    let config = HarvesterConfig::unoptimised();
    let production =
        EnvelopeSimulator::new(config.clone(), envelope_options(SteadyState::BruteForce))
            .measure_characteristic()
            .unwrap();
    let reference = EnvelopeSimulator::new(config.clone(), converged_reference(1500.0))
        .measure_characteristic()
        .unwrap();
    let shooting = EnvelopeSimulator::new(config, envelope_options(SteadyState::default()))
        .measure_characteristic()
        .unwrap();
    for ((v, i_ref), (_, i_shoot)) in reference.points().zip(shooting.points()) {
        assert!(
            (i_shoot - i_ref).abs() <= 1.5e-6,
            "shooting current at {v} V: {i_shoot:.6e} vs converged reference {i_ref:.6e}"
        );
    }
    assert!(
        shooting.statistics().integrated_cycles * 4 <= production.statistics().integrated_cycles,
        "{} vs {}",
        shooting.statistics().integrated_cycles,
        production.statistics().integrated_cycles
    );
}

mod rc_rectifier {
    use super::*;
    use energy_harvester::mna::circuit::Circuit;
    use energy_harvester::mna::devices::{Capacitor, Diode, Resistor, VoltageSource};
    use energy_harvester::mna::shooting::{SteadyStateAnalysis, SteadyStateOptions};
    use energy_harvester::mna::transient::{TransientAnalysis, TransientOptions};
    use energy_harvester::mna::waveform::Waveform;

    fn rectifier(r_load: f64, cap: f64) -> (Circuit, energy_harvester::mna::circuit::NodeId) {
        let mut circuit = Circuit::new();
        let vin = circuit.node("in");
        let out = circuit.node("out");
        circuit.add(VoltageSource::new(
            "V",
            vin,
            Circuit::GROUND,
            Waveform::sine(3.0, 1000.0),
        ));
        circuit.add(Diode::new("D", vin, out));
        circuit.add(Capacitor::new("C", out, Circuit::GROUND, cap));
        circuit.add(Resistor::new("Rload", out, Circuit::GROUND, r_load));
        (circuit, out)
    }

    /// Average load current over the recorded tail of a transient window.
    fn tail_average(
        result: &energy_harvester::mna::transient::TransientResult,
        out: energy_harvester::mna::circuit::NodeId,
        from: f64,
        r_load: f64,
    ) -> f64 {
        let samples: Vec<f64> = result
            .times()
            .iter()
            .zip(result.voltage(out))
            .filter(|(t, _)| **t > from)
            .map(|(_, v)| v / r_load)
            .collect();
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    fn shooting_average(r_load: f64, cap: f64, tol: f64) -> f64 {
        let (circuit, out) = rectifier(r_load, cap);
        let mut options = SteadyStateOptions::new(1e-3);
        options.transient.dt = 1e-5;
        options.tolerance = tol;
        let pss = SteadyStateAnalysis::new(options).run(&circuit).unwrap();
        assert!(pss.converged, "closure error {}", pss.closure_error);
        let result = &pss.result;
        let times = result.times();
        let voltages = result.voltage(out);
        // Uniform-grid period average, first (duplicated periodic) sample
        // dropped.
        voltages[1..].iter().map(|v| v / r_load).sum::<f64>() / (times.len() - 1) as f64
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// On randomised RC-rectifier circuits the shooting steady-state
        /// average load current matches long brute-force settling within
        /// tolerance, and a tighter shooting tolerance is never less
        /// accurate.
        #[test]
        fn shooting_matches_settling_and_tighter_tol_is_never_worse(
            r_kohm in 2.0f64..20.0,
            c_x in 1.0f64..8.0,
        ) {
            let r_load = r_kohm * 1e3;
            let cap = c_x * 1e-7;
            let (circuit, out) = rectifier(r_load, cap);
            // Brute force: settle 60 periods, average the last 5. The
            // fixture's time constants are a few periods, so this reference
            // is genuinely converged.
            let brute = TransientAnalysis::new(TransientOptions {
                t_stop: 65e-3,
                dt: 1e-5,
                ..TransientOptions::default()
            })
            .run(&circuit)
            .unwrap();
            let reference = tail_average(&brute, out, 60e-3, r_load);

            let loose = shooting_average(r_load, cap, 1e-4);
            let tight = shooting_average(r_load, cap, 1e-9);
            let scale = reference.abs().max(1e-6);
            let err_loose = (loose - reference).abs();
            let err_tight = (tight - reference).abs();
            prop_assert!(
                err_tight <= 0.01 * scale,
                "tight shooting must match settling within 1%: {tight:.6e} vs {reference:.6e}"
            );
            prop_assert!(
                err_loose <= 0.05 * scale,
                "even loose shooting stays near settling: {loose:.6e} vs {reference:.6e}"
            );
            prop_assert!(
                err_tight <= err_loose * 1.05 + 1e-12,
                "tightening the closure tolerance must never lose accuracy: \
                 {err_tight:.3e} vs {err_loose:.3e}"
            );
        }
    }
}
