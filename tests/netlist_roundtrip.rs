//! Property suite for the netlist front-end: `build(print(c))` is the
//! identity on circuits of standard devices, and no input string can panic
//! the parser.
//!
//! The round trip is checked *structurally* (node table, device names, and
//! every typed payload compared with derived `PartialEq`, i.e. bit-equal
//! floats) — stronger than comparing simulation output, and fast enough to
//! fuzz hundreds of random circuits.
//!
//! The vendored proptest supplies range strategies only, so each case draws
//! a seed and a local SplitMix64 expands it into a random circuit or input
//! string; failures therefore reproduce from the reported case number alone.

use energy_harvester::mna::analysis::{
    AcOptions, Analysis, AnalysisPlan, FrequencySweep, OpOptions,
};
use energy_harvester::mna::circuit::{Circuit, NodeId};
use energy_harvester::mna::devices::{
    Capacitor, CurrentSource, Diode, IdealTransformer, Inductor, Resistor, TimedSwitch,
    VoltageSource,
};
use energy_harvester::mna::netlist;
use energy_harvester::mna::shooting::SteadyStateOptions;
use energy_harvester::mna::transient::TransientOptions;
use energy_harvester::mna::waveform::Waveform;
use proptest::prelude::*;

/// Local deterministic generator (SplitMix64) expanding one drawn seed into
/// a whole random structure.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: usize) -> usize {
        (((u128::from(self.next_u64())) * (n as u128)) >> 64) as usize
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Positive, finite, log-uniform over the femto-to-mega range the
    /// engineering-suffix parser has to cover.
    fn pos_value(&mut self) -> f64 {
        let exponent = self.range(-15.0, 7.0);
        self.range(1.0, 9.9999) * 10f64.powf(exponent)
    }

    /// Any finite value: positive, negative, or exactly zero.
    fn any_value(&mut self) -> f64 {
        match self.below(5) {
            0 => -self.pos_value(),
            1 => 0.0,
            _ => self.pos_value(),
        }
    }

    fn waveform(&mut self) -> Waveform {
        match self.below(4) {
            0 => Waveform::Dc(self.any_value()),
            1 => Waveform::Sine {
                offset: self.any_value(),
                amplitude: self.any_value(),
                frequency_hz: self.pos_value(),
                phase_rad: self.any_value(),
                delay: self.pos_value(),
            },
            2 => {
                let (rise, fall, width) = (self.pos_value(), self.pos_value(), self.pos_value());
                // A period of 0 is a one-shot; otherwise it must hold the
                // whole trapezoid.
                let period = if self.below(2) == 0 {
                    0.0
                } else {
                    (rise + width + fall) * self.range(1.0, 3.0)
                };
                Waveform::pulse(
                    self.any_value(),
                    self.any_value(),
                    self.pos_value(),
                    rise,
                    fall,
                    width,
                    period,
                )
                .expect("generated pulse is valid")
            }
            _ => {
                let mut t = 0.0;
                let points = (0..1 + self.below(5))
                    .map(|_| {
                        // Deltas span a narrow enough range that each one
                        // strictly advances the accumulated time.
                        t += self.range(1.0, 9.9999) * 10f64.powf(self.range(-6.0, 3.0));
                        (t, self.any_value())
                    })
                    .collect();
                Waveform::pwl(points).expect("generated PWL is valid")
            }
        }
    }

    /// Adds one random device between random nodes of the pool; the index
    /// keeps names unique and the canonical first letter keeps them stable
    /// through the printer.
    fn add_device(&mut self, c: &mut Circuit, nodes: &[NodeId], i: usize) {
        let pick = |rng: &mut Rng| nodes[rng.below(nodes.len())];
        match self.below(8) {
            0 => {
                let (a, b) = (pick(self), pick(self));
                let r = self.pos_value();
                c.add(Resistor::new(&format!("R{i}"), a, b, r));
            }
            1 => {
                let (a, b) = (pick(self), pick(self));
                let (v, ic) = (self.pos_value(), self.any_value());
                c.add(Capacitor::with_initial_voltage(
                    &format!("C{i}"),
                    a,
                    b,
                    v,
                    ic,
                ));
            }
            2 => {
                let (a, b) = (pick(self), pick(self));
                let (l, ic) = (self.pos_value(), self.any_value());
                c.add(Inductor::with_initial_current(
                    &format!("L{i}"),
                    a,
                    b,
                    l,
                    ic,
                ));
            }
            3 => {
                let (a, b) = (pick(self), pick(self));
                let w = self.waveform();
                let mut source = VoltageSource::new(&format!("V{i}"), a, b, w);
                if self.below(3) == 0 {
                    source = source.with_ac(self.any_value(), self.any_value());
                }
                c.add(source);
            }
            4 => {
                let (a, b) = (pick(self), pick(self));
                let w = self.waveform();
                let mut source = CurrentSource::new(&format!("I{i}"), a, b, w);
                if self.below(3) == 0 {
                    source = source.with_ac(self.any_value(), self.any_value());
                }
                c.add(source);
            }
            5 => {
                let (a, b) = (pick(self), pick(self));
                let (is, n) = (self.pos_value(), self.range(0.5, 2.5));
                c.add(Diode::with_parameters(&format!("D{i}"), a, b, is, n));
            }
            6 => {
                let (pp, pn) = (pick(self), pick(self));
                let (sp, sn) = (pick(self), pick(self));
                let ratio = self.pos_value();
                c.add(IdealTransformer::new(
                    &format!("T{i}"),
                    pp,
                    pn,
                    sp,
                    sn,
                    ratio,
                ));
            }
            _ => {
                let (a, b) = (pick(self), pick(self));
                // Both times drawn from the same narrow exponent band so the
                // sum strictly exceeds t_on.
                let time =
                    |rng: &mut Rng| rng.range(1.0, 9.9999) * 10f64.powf(rng.range(-6.0, 3.0));
                let t_on = time(self);
                let t_off = t_on + time(self);
                c.add(TimedSwitch::new(&format!("S{i}"), a, b, t_on, t_off));
            }
        }
    }

    fn circuit(&mut self) -> Circuit {
        let mut c = Circuit::new();
        // Node pool: ground plus five named nodes, created up front in a
        // fixed order.
        let nodes: Vec<NodeId> = std::iter::once(Circuit::GROUND)
            .chain(
                ["n.a", "n.b", "mid", "out", "bus"]
                    .iter()
                    .map(|n| c.node(n)),
            )
            .collect();
        let count = 1 + self.below(9);
        for i in 0..count {
            self.add_device(&mut c, &nodes, i);
        }
        c
    }

    /// A random *valid* analysis card — only option values the card grammar
    /// can express (the printer rejects anything else), spanning every card
    /// kind and both the keyed-default and overridden forms.
    fn analysis(&mut self) -> Analysis {
        match self.below(4) {
            0 => {
                let mut options = OpOptions::default();
                if self.below(2) == 0 {
                    options.max_newton_iterations = 1 + self.below(200);
                }
                if self.below(2) == 0 {
                    options.gmin_steps = self.below(30);
                }
                if self.below(2) == 0 {
                    options.source_steps = self.below(30);
                }
                if self.below(2) == 0 {
                    options.delta_tolerance = self.pos_value();
                }
                if self.below(2) == 0 {
                    options.residual_tolerance = self.pos_value();
                }
                Analysis::Op(options)
            }
            1 => {
                let dt = self.pos_value();
                Analysis::Tran(TransientOptions {
                    dt,
                    t_stop: dt * self.range(1.0, 1000.0),
                    ..TransientOptions::default()
                })
            }
            2 => {
                let mut options = SteadyStateOptions::new(self.pos_value());
                if self.below(2) == 0 {
                    options.transient.dt = options.period / self.range(10.0, 1000.0);
                }
                if self.below(2) == 0 {
                    options.warmup_cycles = self.range(1.0, 20.0).round();
                }
                if self.below(2) == 0 {
                    options.tolerance = self.pos_value();
                }
                if self.below(2) == 0 {
                    options.max_iterations = 1 + self.below(60);
                }
                Analysis::Pss(options)
            }
            _ => {
                let sweep = match self.below(3) {
                    0 => FrequencySweep::Dec,
                    1 => FrequencySweep::Oct,
                    _ => FrequencySweep::Lin,
                };
                let f_start = self.pos_value();
                let f_stop = f_start * self.range(1.0, 1e6);
                Analysis::Ac(AcOptions::new(sweep, 1 + self.below(25), f_start, f_stop))
            }
        }
    }

    fn plan(&mut self) -> AnalysisPlan {
        let cards = (0..self.below(5)).map(|_| self.analysis()).collect();
        AnalysisPlan::from_cards(cards).expect("generated cards are valid")
    }

    /// A random string over printable ASCII plus newline and tab.
    fn text(&mut self, max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| match self.below(97) {
                95 => '\n',
                96 => '\t',
                k => (b' ' + k as u8) as char,
            })
            .collect()
    }
}

/// Typed equality through the `as_any` hook: derived `PartialEq` on each
/// standard device compares names, terminals and every parameter bit.
fn assert_devices_equal(a: &Circuit, b: &Circuit) {
    assert_eq!(a.device_count(), b.device_count());
    for (da, db) in a.devices().iter().zip(b.devices()) {
        let (any_a, any_b) = (da.as_any().unwrap(), db.as_any().unwrap());
        macro_rules! compare {
            ($($ty:ty),+) => {
                $(
                    if let Some(x) = any_a.downcast_ref::<$ty>() {
                        assert_eq!(Some(x), any_b.downcast_ref::<$ty>());
                        continue;
                    }
                )+
            };
        }
        compare!(
            Resistor,
            Capacitor,
            Inductor,
            VoltageSource,
            CurrentSource,
            Diode,
            IdealTransformer,
            TimedSwitch
        );
        panic!("unexpected device kind '{}'", da.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `build(print(c))` reproduces the node table and every device payload
    /// exactly, and printing again is a fixed point.
    #[test]
    fn print_build_round_trips(seed in 0usize..1_000_000) {
        let c = Rng(seed as u64).circuit();
        let text = netlist::print(&c).expect("standard devices must print");
        let rebuilt = netlist::build(&text)
            .unwrap_or_else(|e| panic!("printed netlist must re-build: {e}\n{text}"));
        assert_eq!(rebuilt.node_names(), c.node_names(), "node tables differ");
        assert_devices_equal(&c, &rebuilt);
        let second = netlist::print(&rebuilt).expect("round-tripped circuit must print");
        prop_assert!(second == text, "print is not a fixed point:\n{text}\nvs\n{second}");
    }

    /// `build_with_plan(print_with_plan(c, p))` reproduces the circuit *and*
    /// every analysis card bit for bit, and printing again is a fixed point.
    #[test]
    fn plan_round_trips(seed in 0usize..1_000_000) {
        let mut rng = Rng(seed as u64 ^ 0xCA7D);
        let c = rng.circuit();
        let plan = rng.plan();
        let text = netlist::print_with_plan(&c, &plan).expect("generated plans must print");
        let (rebuilt, replan) = netlist::build_with_plan(&text)
            .unwrap_or_else(|e| panic!("printed netlist must re-build: {e}\n{text}"));
        assert_eq!(rebuilt.node_names(), c.node_names(), "node tables differ");
        assert_devices_equal(&c, &rebuilt);
        prop_assert!(replan == plan, "plans differ:\n{plan:?}\nvs\n{replan:?}\n{text}");
        let second = netlist::print_with_plan(&rebuilt, &replan)
            .expect("round-tripped plan must print");
        prop_assert!(second == text, "print is not a fixed point:\n{text}\nvs\n{second}");
    }

    /// No input string panics the parser: every outcome is `Ok` or a
    /// printable positioned error.
    #[test]
    fn parser_never_panics(seed in 0usize..1_000_000) {
        let source = Rng(seed as u64 ^ 0xD1CE).text(240);
        match netlist::build(&source) {
            Ok(circuit) => prop_assert!(circuit.device_count() > 0),
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    /// Mutilated versions of a real fixture never panic either — this walks
    /// far more of the grammar than fully random text.
    #[test]
    fn mutated_fixtures_never_panic(
        cut_start in 0usize..600,
        cut_len in 0usize..120,
        seed in 0usize..1_000_000,
    ) {
        let insert = Rng(seed as u64 ^ 0xFEED).text(12);
        let base = energy_harvester::experiments::arrays::coupled_array_netlist(2);
        let start = cut_start.min(base.len());
        let end = (start + cut_len).min(base.len());
        // Snap to char boundaries so slicing cannot itself panic.
        let start = (0..=start).rev().find(|&i| base.is_char_boundary(i)).unwrap();
        let end = (end..=base.len()).find(|&i| base.is_char_boundary(i)).unwrap();
        let mutated = format!("{}{}{}", &base[..start], insert, &base[end..]);
        let _ = netlist::build(&mutated);
    }
}
