//! Golden equivalence suite for the netlist front-end: the shipped
//! `examples/netlists/*.cir` files must elaborate into circuits whose
//! transient **and** shooting traces are *bit-identical* to the hardcoded
//! Rust fixtures they re-express.
//!
//! Bit-identity (every `f64` compared through `to_bits`) is deliberate: the
//! solver's arithmetic depends on node numbering and device insertion order,
//! so these tests pin that the front-end reproduces both exactly — any
//! reordering, value drift, or parser rounding shows up as a failed bit
//! pattern, not a fuzzy tolerance.

use energy_harvester::mna::analysis::AnalysisEngine;
use energy_harvester::mna::circuit::Circuit;
use energy_harvester::mna::devices::{Capacitor, Resistor, VoltageSource};
use energy_harvester::mna::netlist;
use energy_harvester::mna::shooting::{SteadyStateAnalysis, SteadyStateOptions};
use energy_harvester::mna::transient::{TransientAnalysis, TransientOptions, TransientResult};
use energy_harvester::mna::waveform::Waveform;
use energy_harvester::models::booster::{add_transformer_booster, add_villard_multiplier};
use energy_harvester::models::{TransformerBoosterParams, VillardParams};
use std::path::PathBuf;

fn netlist_file(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/netlists")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The driven-booster harness of `crates/core/src/booster.rs`: a 1 V / 50 Hz
/// source, the booster under test, and the standard load.
fn driven(booster: impl FnOnce(&mut Circuit)) -> Circuit {
    let mut c = Circuit::new();
    let ac = c.node("ac");
    let out = c.node("out");
    c.add(VoltageSource::new(
        "Vac",
        ac,
        Circuit::GROUND,
        Waveform::sine(1.0, 50.0),
    ));
    booster(&mut c);
    c.add(Capacitor::new("Cload", out, Circuit::GROUND, 10e-6));
    c.add(Resistor::new("Rload", out, Circuit::GROUND, 1e6));
    c
}

fn transient(circuit: &Circuit, t_stop: f64) -> TransientResult {
    TransientAnalysis::new(TransientOptions {
        t_stop,
        dt: 2e-5,
        ..TransientOptions::default()
    })
    .run(circuit)
    .expect("fixture must simulate")
}

/// Asserts two results sampled the same times and every node voltage matches
/// bit for bit.
fn assert_traces_bit_identical(circuit: &Circuit, a: &TransientResult, b: &TransientResult) {
    assert_eq!(a.times().len(), b.times().len(), "step counts differ");
    for (i, (ta, tb)) in a.times().iter().zip(b.times()).enumerate() {
        assert_eq!(ta.to_bits(), tb.to_bits(), "time grids differ at step {i}");
    }
    for name in &circuit.node_names()[1..] {
        let node = circuit.find_node(name).unwrap();
        let (va, vb) = (a.voltage(node), b.voltage(node));
        for (i, (x, y)) in va.iter().zip(&vb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "node {name} diverges at step {i}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn villard_netlist_is_bit_identical_to_the_builder() {
    let reference = driven(|c| {
        let ac = c.find_node("ac").unwrap();
        let out = c.find_node("out").unwrap();
        add_villard_multiplier(c, "B", ac, out, &VillardParams::paper_six_stage());
    });
    let parsed = netlist::build(&netlist_file("villard.cir")).expect("villard.cir must build");
    // Same node numbering (names differ: the netlist uses its own labels).
    assert_eq!(parsed.node_count(), reference.node_count());
    assert_eq!(parsed.device_count(), reference.device_count());
    let a = transient(&reference, 0.1);
    let b = transient(&parsed, 0.1);
    assert_traces_bit_identical(&reference, &a, &b);
}

#[test]
fn transformer_netlist_is_bit_identical_to_the_builder() {
    let reference = driven(|c| {
        let ac = c.find_node("ac").unwrap();
        let out = c.find_node("out").unwrap();
        add_transformer_booster(c, "B", ac, out, &TransformerBoosterParams::unoptimised());
    });
    let parsed = netlist::build(&netlist_file("transformer_booster.cir"))
        .expect("transformer_booster.cir must build");
    assert_eq!(parsed.node_count(), reference.node_count());
    assert_eq!(parsed.device_count(), reference.device_count());
    let a = transient(&reference, 0.1);
    let b = transient(&parsed, 0.1);
    assert_traces_bit_identical(&reference, &a, &b);
}

#[test]
fn coupled_array_netlist_file_matches_the_generator() {
    // The shipped file is the generator's verbatim output, so the fixture
    // family stays in one place (regenerate with
    // `coupled_array_netlist(4)` if the builder ever changes).
    assert_eq!(
        netlist_file("coupled_array4.cir"),
        energy_harvester::experiments::arrays::coupled_array_netlist(4),
        "examples/netlists/coupled_array4.cir is stale"
    );
}

#[test]
fn coupled_array_netlist_is_bit_identical_through_shooting() {
    let array = energy_harvester::experiments::arrays::coupled_array(4);
    let parsed =
        netlist::build(&netlist_file("coupled_array4.cir")).expect("coupled_array4.cir must build");
    assert_eq!(parsed.node_names(), array.circuit.node_names());

    // Transient bit-identity.
    let a = transient(&array.circuit, 5.0 * array.period);
    let b = transient(&parsed, 5.0 * array.period);
    assert_traces_bit_identical(&array.circuit, &a, &b);

    // Shooting bit-identity: same orbit, same iteration count, identical
    // closing state on every output node.
    let run = |c: &Circuit| {
        let options: SteadyStateOptions = array.steady_state_options();
        SteadyStateAnalysis::new(options)
            .run(c)
            .expect("array must reach a periodic steady state")
    };
    let pa = run(&array.circuit);
    let pb = run(&parsed);
    assert_eq!(pa.converged, pb.converged);
    assert_eq!(pa.iterations, pb.iterations);
    assert_eq!(pa.closure_error.to_bits(), pb.closure_error.to_bits());
    assert_traces_bit_identical(&array.circuit, &pa.result, &pb.result);
}

#[test]
fn analysis_cards_drive_the_fixtures_bit_identically() {
    // The `.tran` cards the booster fixtures carry must reproduce the exact
    // golden transient the pre-card harness ran, through the card-driven
    // entry point (`build_with_plan` + `AnalysisEngine`) and with no
    // per-file flags.
    for name in ["villard.cir", "transformer_booster.cir"] {
        let (circuit, plan) =
            netlist::build_with_plan(&netlist_file(name)).expect("fixture must build with plan");
        assert!(!plan.is_empty(), "{name} must carry analysis cards");
        let results = AnalysisEngine::new()
            .run(&circuit, &plan)
            .expect("fixture plan must run");
        let card_driven = results.transient().expect("fixture plans run a .tran");
        let reference = transient(&circuit, 0.1);
        assert_traces_bit_identical(&circuit, card_driven, &reference);
    }

    // The transformer fixture additionally sweeps its small-signal response.
    let (circuit, plan) = netlist::build_with_plan(&netlist_file("transformer_booster.cir"))
        .expect("transformer_booster.cir must build with plan");
    let results = AnalysisEngine::new()
        .run(&circuit, &plan)
        .expect("transformer plan must run");
    let ac = results.ac().expect("the transformer fixture carries a .ac");
    assert_eq!(ac.len(), 51, "dec 10 over 1 Hz..100 kHz is 51 points");
}

#[test]
fn coupled_array_cards_match_the_builder_plan_and_traces() {
    let array = energy_harvester::experiments::arrays::coupled_array(4);
    let (circuit, plan) = netlist::build_with_plan(&netlist_file("coupled_array4.cir"))
        .expect("coupled_array4.cir must build with plan");

    // The fixture's cards elaborate into exactly the plan the Rust builder
    // hands out — option for option, bit for bit.
    assert_eq!(plan, array.analysis_plan());

    // Executing those cards reproduces both golden traces: the transient
    // study and the shooting orbit, each bit-identical to the standalone
    // engines on fresh workspaces.
    let results = AnalysisEngine::new()
        .run(&circuit, &plan)
        .expect("array plan must run");
    let tran = results.transient().expect("array plan runs a .tran");
    assert_traces_bit_identical(&circuit, tran, &transient(&circuit, 5.0 * array.period));
    let pss = results.steady_state().expect("array plan runs a .pss");
    let reference = SteadyStateAnalysis::new(array.steady_state_options())
        .run(&circuit)
        .expect("array must reach a periodic steady state");
    assert_eq!(pss.converged, reference.converged);
    assert_eq!(pss.iterations, reference.iterations);
    assert_eq!(
        pss.closure_error.to_bits(),
        reference.closure_error.to_bits()
    );
    assert_traces_bit_identical(&circuit, &pss.result, &reference.result);
}

#[test]
fn print_round_trips_the_array_builder() {
    // print() must be the exact inverse of build() even for a circuit that
    // was *not* born from a netlist.
    let original = energy_harvester::experiments::arrays::coupled_array(3).circuit;
    let text = netlist::print(&original).expect("standard devices must print");
    let rebuilt = netlist::build(&text).expect("printed netlist must build");
    assert_eq!(rebuilt.node_names(), original.node_names());
    let a = transient(&original, 2e-3);
    let b = transient(&rebuilt, 2e-3);
    assert_traces_bit_identical(&original, &a, &b);
}
