//! End-to-end acceptance suite for adaptive time stepping on the paper's
//! harvester fixtures.
//!
//! The headline guarantee: on the paper's Fig. 5 harvester (analytical
//! micro-generator + Villard multiplier), the envelope measurement under
//! [`StepControl::adaptive_averaging`] reproduces the charging
//! characteristic of a tight fixed-step reference to well under a
//! microampere while spending **at least 3× fewer Newton iterations** than
//! the production fixed-step configuration it replaces. The heavy
//! comparisons are `#[ignore]`d in debug builds (the tight reference alone
//! is ~300k time steps) and run in the release-mode CI job.

use energy_harvester::mna::transient::StepControl;
use energy_harvester::models::envelope::{EnvelopeOptions, EnvelopeSimulator, SteadyState};
use energy_harvester::models::system::HarvesterConfig;
use energy_harvester::models::{GeneratorModel, SolverBackend};
use proptest::prelude::*;

fn envelope_options(step_control: StepControl, detail_dt: f64) -> EnvelopeOptions {
    EnvelopeOptions {
        voltage_points: 5,
        max_voltage: 3.0,
        settle_cycles: 30.0,
        measure_cycles: 8.0,
        detail_dt,
        horizon: 600.0,
        output_points: 50,
        backend: SolverBackend::Auto,
        step_control,
        // This suite pins the step-control contract, so it stays on the
        // marching path (the shooting engine has its own golden suite) and
        // on classical full Newton: the modified-Newton bypass deliberately
        // trades extra factorisation-free iterations for fewer
        // factorisations, which would dilute the raw iteration-count ratio
        // this suite asserts (it has its own suite in
        // `crates/mna/tests/jacobian_reuse.rs`).
        steady_state: SteadyState::BruteForce,
        reuse_jacobian: false,
        ..EnvelopeOptions::default()
    }
}

/// The acceptance criterion of the adaptive-stepping PR, asserted with
/// slack: ≥3× fewer Newton iterations than fixed stepping at the nominal
/// `detail_dt`, with every measured charging current within 1e-6 A of the
/// 8×-tight fixed-step reference (measured margin is ~8×: ≈1.2e-7 A).
#[test]
#[cfg_attr(debug_assertions, ignore = "tight reference is release-scale work")]
fn adaptive_envelope_cuts_newton_work_3x_on_the_villard_harvester() {
    let config = HarvesterConfig::model_comparison(GeneratorModel::Analytical);
    let dt = 1e-4;

    let tight = EnvelopeSimulator::new(
        config.clone(),
        envelope_options(StepControl::Fixed, dt / 8.0),
    )
    .measure_characteristic()
    .unwrap();
    let fixed = EnvelopeSimulator::new(config.clone(), envelope_options(StepControl::Fixed, dt))
        .measure_characteristic()
        .unwrap();
    let adaptive = EnvelopeSimulator::new(
        config,
        envelope_options(StepControl::adaptive_averaging(), dt),
    )
    .measure_characteristic()
    .unwrap();

    for ((v, i_tight), ((_, i_fixed), (_, i_adaptive))) in
        tight.points().zip(fixed.points().zip(adaptive.points()))
    {
        assert!(
            (i_adaptive - i_tight).abs() <= 1e-6,
            "adaptive current at {v} V must stay within 1e-6 A of the tight reference: \
             {i_adaptive:.6e} vs {i_tight:.6e}"
        );
        assert!(
            (i_fixed - i_tight).abs() <= 1e-6,
            "fixed baseline at {v} V drifted from its own tight reference: \
             {i_fixed:.6e} vs {i_tight:.6e}"
        );
    }

    let fixed_work = fixed.statistics().newton_iterations;
    let adaptive_work = adaptive.statistics().newton_iterations;
    assert!(
        adaptive_work * 3 <= fixed_work,
        "adaptive must cut total Newton iterations at least 3x on the Villard envelope \
         fixture: {adaptive_work} vs {fixed_work} ({:.2}x)",
        fixed_work as f64 / adaptive_work as f64
    );
    assert!(adaptive.statistics().predicted_steps > 0);
    assert_eq!(fixed.statistics().lte_rejections, 0);
}

/// The transformer-booster harvester (narrow rectifier conduction pulses,
/// the least LTE-friendly fixture in the repo) must still come out ahead of
/// fixed stepping and stay within the same 1e-6 A accuracy envelope.
#[test]
#[cfg_attr(debug_assertions, ignore = "tight reference is release-scale work")]
fn adaptive_envelope_still_wins_on_the_transformer_harvester() {
    let config = HarvesterConfig::unoptimised();
    let dt = 1e-4;
    let tight = EnvelopeSimulator::new(
        config.clone(),
        envelope_options(StepControl::Fixed, dt / 8.0),
    )
    .measure_characteristic()
    .unwrap();
    let fixed = EnvelopeSimulator::new(config.clone(), envelope_options(StepControl::Fixed, dt))
        .measure_characteristic()
        .unwrap();
    let adaptive = EnvelopeSimulator::new(
        config,
        envelope_options(StepControl::adaptive_averaging(), dt),
    )
    .measure_characteristic()
    .unwrap();
    for ((v, i_tight), (_, i_adaptive)) in tight.points().zip(adaptive.points()) {
        assert!(
            (i_adaptive - i_tight).abs() <= 1.5e-6,
            "adaptive current at {v} V: {i_adaptive:.6e} vs tight {i_tight:.6e}"
        );
    }
    assert!(
        adaptive.statistics().newton_iterations < fixed.statistics().newton_iterations,
        "adaptive must not lose to fixed even on the rectifier-pulse fixture: {} vs {}",
        adaptive.statistics().newton_iterations,
        fixed.statistics().newton_iterations
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomised RC fixtures: tightening `reltol` by two decades never
    /// increases the worst error against the analytic solution, and the
    /// adaptive trace stays within a tolerance-scaled bound of it.
    #[test]
    fn tighter_reltol_is_never_less_accurate_on_random_rc(
        r_kohm in 0.2f64..5.0,
        c_uf in 0.1f64..2.0,
    ) {
        use energy_harvester::mna::circuit::Circuit;
        use energy_harvester::mna::devices::{Capacitor, Resistor, VoltageSource};
        use energy_harvester::mna::transient::{TransientAnalysis, TransientOptions};
        use energy_harvester::mna::waveform::Waveform;

        let r = r_kohm * 1e3;
        let cap = c_uf * 1e-6;
        let tau = r * cap;
        let mut circuit = Circuit::new();
        let vin = circuit.node("in");
        let out = circuit.node("out");
        circuit.add(VoltageSource::new("V", vin, Circuit::GROUND, Waveform::dc(1.0)));
        circuit.add(Resistor::new("R", vin, out, r));
        circuit.add(Capacitor::new("C", out, Circuit::GROUND, cap));

        let worst = |reltol: f64| -> f64 {
            let result = TransientAnalysis::new(TransientOptions {
                t_stop: 3.0 * tau,
                dt: tau / 500.0,
                record_interval: Some(tau / 20.0),
                step_control: StepControl::Adaptive {
                    reltol,
                    abstol: 1e-9,
                    max_dt: f64::INFINITY,
                },
                ..TransientOptions::default()
            })
            .run(&circuit)
            .unwrap();
            let mut w = 0.0f64;
            for (&t, v) in result.times().iter().zip(result.voltage(out)) {
                w = w.max((v - (1.0 - (-t / tau).exp())).abs());
            }
            w
        };
        let loose = worst(1e-2);
        let tight = worst(1e-4);
        prop_assert!(tight <= loose * 1.2 + 1e-12,
            "reltol 1e-4 must not be less accurate than 1e-2: {tight:.3e} vs {loose:.3e}");
        prop_assert!(loose < 2e-2, "even loose adaptive stays near the analytic RC: {loose:.3e}");
    }
}
