//! No-hang property for cooperative cancellation: firing a [`CancelToken`]
//! after a random number of polls always *returns* — a cancelled outcome
//! carrying the valid trace-so-far, or (when the token fires too late) the
//! ordinary completed result — and never hangs or panics. The runtime
//! mirror of `budget_no_hang`, with the cancellation point taking the place
//! of the budget axis.
//!
//! `CancelToken::cancelled_after(n)` makes the firing deterministic: the
//! token cancels itself on its `n`-th poll, so each case pins the exact
//! step/card boundary where the engine must stop without any cross-thread
//! timing.

use energy_harvester::mna::analysis::{
    Analysis, AnalysisEngine, AnalysisPlan, AnalysisResult, CANCELLED_REASON,
};
use energy_harvester::mna::cancel::CancelToken;
use energy_harvester::mna::netlist;
use energy_harvester::mna::transient::SimulationBudget;
use proptest::prelude::*;

/// Keeps `.op` and `.tran` cards (with sane iteration caps); `.pss` and
/// `.ac` are dropped for fuzz-case speed, exactly as in `budget_no_hang`.
fn marchable_cards(plan: &AnalysisPlan) -> Vec<Analysis> {
    plan.cards()
        .iter()
        .filter_map(|card| match *card {
            Analysis::Op(mut o) => {
                o.max_newton_iterations = o.max_newton_iterations.min(200);
                Some(Analysis::Op(o))
            }
            Analysis::Tran(mut t) => {
                t.max_newton_iterations = t.max_newton_iterations.min(200);
                Some(Analysis::Tran(t))
            }
            Analysis::Pss(_) | Analysis::Ac(_) => None,
        })
        .collect()
}

/// A transient trace is self-consistent when its time axis is finite and
/// strictly increasing — the shape every consumer (averaging, metrics,
/// plotting) relies on, whether or not the run was cut short.
fn assert_valid_trace(result: &AnalysisResult) -> Result<(), TestCaseError> {
    if let AnalysisResult::Tran(t) = result {
        let times = t.times();
        prop_assert!(!times.is_empty(), "even a cancelled run keeps t = 0");
        prop_assert!(times.iter().all(|t| t.is_finite()));
        prop_assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "trace-so-far must stay strictly increasing"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cancellation at a random poll index always returns promptly with a
    /// consistent outcome: a cancelled truncation (prefix results all
    /// valid) or, when the token never ripened, the complete result set.
    #[test]
    fn cancelled_plans_always_return(fire_at in 1usize..400) {
        let fire_at = fire_at as u64;
        let source = energy_harvester::experiments::arrays::coupled_array_netlist(2);
        let (circuit, plan) = netlist::build_with_plan(&source)
            .expect("the fixture netlist is valid");
        let plan = AnalysisPlan::from_cards(marchable_cards(&plan))
            .expect("filtered cards stay valid");

        let token = CancelToken::cancelled_after(fire_at);
        let mut engine = AnalysisEngine::new();
        engine.install_cancel_token(token.clone());
        let outcome = engine
            .run_budgeted(&circuit, &plan, SimulationBudget::UNLIMITED)
            .expect("cancellation is an outcome, not an error");

        prop_assert!(outcome.results().len() <= plan.len());
        for result in outcome.results().results() {
            assert_valid_trace(result)?;
        }
        if let Some(cut) = outcome.truncation() {
            prop_assert!(cut.reason == CANCELLED_REASON);
            prop_assert!(cut.card <= plan.len());
            prop_assert!(outcome.cancelled());
            prop_assert!(token.is_cancelled());
        } else {
            // The run finished before the token ripened: every poll was
            // counted, none reached the threshold.
            prop_assert!(outcome.is_complete());
            prop_assert!(token.polls() < fire_at);
        }
    }
}
