//! Cross-crate integration tests: the full signal chain (generator → booster
//! → storage), the envelope acceleration against brute-force simulation, the
//! optimisation loop end-to-end, and property-based tests on the core
//! physical invariants.

use energy_harvester::experiments::{
    decode, encode, paper_bounds, run_optimisation, FitnessBudget, HarvesterObjective,
    OptimisationOptions, GENE_COUNT,
};
use energy_harvester::mna::transient::{IntegrationMethod, TransientAnalysis, TransientOptions};
use energy_harvester::models::envelope::{EnvelopeOptions, EnvelopeSimulator};
use energy_harvester::models::flux::CouplingFunction;
use energy_harvester::models::{
    BoosterConfig, GeneratorModel, HarvesterConfig, MicroGeneratorParams, StorageParams,
    VillardParams,
};
use energy_harvester::optim::{GaOptions, GeneticAlgorithm, Objective, Optimizer};
use proptest::prelude::*;

/// The complete chain charges the storage regardless of which booster is used.
#[test]
fn full_chain_charges_with_both_paper_boosters() {
    let options = TransientOptions {
        t_stop: 0.8,
        dt: 1e-4,
        record_interval: Some(2e-3),
        ..TransientOptions::default()
    };
    let mut villard = HarvesterConfig::model_comparison(GeneratorModel::Analytical);
    villard.storage.capacitance = 100e-6;
    let mut transformer = HarvesterConfig::unoptimised();
    transformer.storage.capacitance = 100e-6;
    let v_villard = villard.simulate(options).unwrap().final_storage_voltage();
    let v_transformer = transformer
        .simulate(options)
        .unwrap()
        .final_storage_voltage();
    assert!(
        v_villard > 0.02,
        "Villard chain must charge, got {v_villard}"
    );
    assert!(
        v_transformer > 0.02,
        "transformer chain must charge, got {v_transformer}"
    );
}

/// The envelope-following accelerator must agree with a brute-force detailed
/// simulation on a scenario short enough to run both.
#[test]
fn envelope_matches_detailed_simulation_on_a_short_scenario() {
    let mut config = HarvesterConfig::unoptimised();
    config.storage = StorageParams {
        capacitance: 2e-3,
        leakage_resistance: 1e9,
        series_resistance: 0.0,
        initial_voltage: 0.0,
    };
    let horizon = 6.0;

    // Brute force: simulate every vibration cycle.
    let detailed = config
        .simulate(TransientOptions {
            t_stop: horizon,
            dt: 1e-4,
            record_interval: Some(0.05),
            ..TransientOptions::default()
        })
        .unwrap();
    let v_detailed = detailed.final_storage_voltage();

    // Envelope: cycle-averaged charging characteristic + slow ODE.
    let envelope = EnvelopeSimulator::new(
        config,
        EnvelopeOptions {
            voltage_points: 6,
            max_voltage: 3.0,
            settle_cycles: 50.0,
            measure_cycles: 8.0,
            detail_dt: 1e-4,
            horizon,
            output_points: 60,
            backend: Default::default(),
            step_control: Default::default(),
            steady_state: Default::default(),
            ..EnvelopeOptions::default()
        },
    );
    let v_envelope = envelope.charge_curve().unwrap().final_voltage();

    assert!(
        v_detailed > 0.05,
        "detailed run must charge, got {v_detailed}"
    );
    let relative_error = (v_envelope - v_detailed).abs() / v_detailed;
    assert!(
        relative_error < 0.35,
        "envelope ({v_envelope} V) must track the detailed simulation ({v_detailed} V); the \
         start-up transient accounts for part of the difference on such a short horizon"
    );
}

/// Backward Euler and trapezoidal integration agree on the coupled system.
#[test]
fn integration_methods_agree_on_the_coupled_system() {
    let mut config = HarvesterConfig::unoptimised();
    config.storage.capacitance = 100e-6;
    let (circuit, nodes) = config.build();
    let run = |method| {
        TransientAnalysis::new(TransientOptions {
            t_stop: 0.5,
            dt: 5e-5,
            method,
            record_interval: Some(1e-3),
            ..TransientOptions::default()
        })
        .run(&circuit)
        .unwrap()
        .final_voltage(nodes.storage)
    };
    let be = run(IntegrationMethod::BackwardEuler);
    let tr = run(IntegrationMethod::Trapezoidal);
    assert!(be > 0.01 && tr > 0.01);
    assert!(
        (be - tr).abs() / tr < 0.25,
        "methods must agree within a quarter: BE {be}, TR {tr}"
    );
}

/// End-to-end integrated optimisation: the GA-found design must never be
/// worse than the Table 1 starting point, and its parameters must stay inside
/// the physical bounds.
#[test]
fn integrated_optimisation_does_not_regress_the_design() {
    let base = HarvesterConfig::unoptimised();
    let outcome = run_optimisation(&base, &OptimisationOptions::coarse());
    assert!(outcome.optimised_fitness >= outcome.unoptimised_fitness);
    let genes = encode(&outcome.optimised);
    let bounds = paper_bounds();
    for ((g, lo), hi) in genes.iter().zip(bounds.lower()).zip(bounds.upper()) {
        assert!(
            *g >= *lo - 1e-9 && *g <= *hi + 1e-9,
            "optimised gene {g} escaped its bounds [{lo}, {hi}]"
        );
    }
}

/// The objective seen by the optimiser is deterministic — a prerequisite for
/// reproducible optimisation runs.
#[test]
fn harvester_objective_is_deterministic() {
    let objective =
        HarvesterObjective::new(HarvesterConfig::unoptimised(), FitnessBudget::coarse());
    let genes = encode(&HarvesterConfig::unoptimised());
    let a = objective.evaluate(&genes);
    let b = objective.evaluate(&genes);
    assert_eq!(a, b);
}

/// GA against random search on the same cheap analytic surrogate: with equal
/// evaluation budgets the GA must not lose badly (sanity check that the
/// optimiser wiring is sound before spending simulation time on it).
#[test]
fn ga_is_competitive_with_random_search_on_a_surrogate() {
    let surrogate = |genes: &[f64]| {
        // A smooth surrogate with an interior optimum in the harvester bounds.
        let r = genes[0] * 1e3;
        let n = genes[1] / 1000.0;
        let rc = genes[2] / 1000.0;
        -((r - 1.05).powi(2) + (n - 2.0).powi(2) + (rc - 1.2).powi(2))
    };
    let bounds = paper_bounds();
    let ga = GeneticAlgorithm::new(GaOptions {
        population_size: 30,
        ..GaOptions::paper()
    });
    let ga_result = ga.optimise(&surrogate, &bounds, 20, 3);
    let rs = energy_harvester::optim::RandomSearch::new(30);
    let rs_result = rs.optimise(&surrogate, &bounds, 20, 3);
    assert!(ga_result.best_fitness >= rs_result.best_fitness - 0.05);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The coupling function stays bounded by its rest value and is even in z
    /// for every valid geometry.
    #[test]
    fn coupling_function_is_even_and_bounded(
        outer_mm in 0.9f64..1.5,
        inner_frac in 0.2f64..0.7,
        height_factor in 2.1f64..4.0,
        flux in 0.1f64..0.8,
        z_frac in -1.5f64..1.5,
    ) {
        let mut params = MicroGeneratorParams::unoptimised();
        params.outer_radius = outer_mm * 1e-3;
        params.inner_radius = inner_frac * params.outer_radius;
        params.magnet_height = height_factor * params.outer_radius;
        params.flux_density = flux;
        prop_assume!(params.is_valid());
        let coupling = CouplingFunction::new(&params);
        let z = z_frac * params.magnet_height;
        let k = coupling.value(z);
        prop_assert!(k.abs() <= coupling.peak() * (1.0 + 1e-9));
        prop_assert!((coupling.value(-z) - k).abs() <= 1e-9 * coupling.peak().max(1.0));
        prop_assert!((coupling.peak() - params.coupling_at_rest()).abs() < 1e-9);
    }

    /// Chromosome decode always produces a physically valid generator whose
    /// coil resistance respects the manufacturability floor.
    #[test]
    fn decode_always_yields_valid_designs(
        genes in proptest::collection::vec(0.0f64..1.0, GENE_COUNT),
    ) {
        let bounds = paper_bounds();
        let concrete: Vec<f64> = genes
            .iter()
            .zip(bounds.lower().iter().zip(bounds.upper().iter()))
            .map(|(g, (lo, hi))| lo + g * (hi - lo))
            .collect();
        let config = decode(&HarvesterConfig::unoptimised(), &concrete);
        prop_assert!(config.generator.is_valid());
        prop_assert!(config.generator.coil_resistance + 1e-9 >= config.generator.minimum_coil_resistance());
        match config.booster {
            BoosterConfig::Transformer(p) => prop_assert!(p.is_valid()),
            _ => prop_assert!(false, "decode must keep the transformer booster"),
        }
    }

    /// Villard parameter combinations within reason always produce a
    /// simulatable multiplier netlist.
    #[test]
    fn villard_parameters_always_build(stages in 1usize..8, cap_uf in 1.0f64..100.0) {
        let params = VillardParams {
            stages,
            stage_capacitance: cap_uf * 1e-6,
            ..VillardParams::paper_six_stage()
        };
        prop_assert!(params.is_valid());
        let mut config = HarvesterConfig::model_comparison(GeneratorModel::IdealSource);
        config.booster = BoosterConfig::Villard(params);
        let (circuit, _) = config.build();
        prop_assert!(circuit.device_count() >= 3 * stages);
    }
}
