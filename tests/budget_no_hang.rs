//! No-hang property for budgeted plan execution: every mutilated version of
//! a real fixture netlist that still parses must *return* when run under a
//! tight [`SimulationBudget`] — a complete result set, a truncated prefix,
//! or a printable error, but never unbounded work.
//!
//! This is the runtime companion of `netlist_roundtrip`'s parser fuzzing:
//! the mutations there prove no input string can panic the *front end*; the
//! cases here push the surviving circuits and cards through the *engine*,
//! which is where a mangled time step, iteration cap, or homotopy count
//! would otherwise turn into an unbounded simulation.
//!
//! The vendored proptest supplies range strategies only, so each case draws
//! a seed and a local SplitMix64 expands it into the spliced-in mutation
//! text; failures therefore reproduce from the reported case number alone.

use energy_harvester::mna::analysis::{Analysis, AnalysisEngine, AnalysisPlan};
use energy_harvester::mna::netlist;
use energy_harvester::mna::transient::SimulationBudget;
use proptest::prelude::*;

/// Local deterministic generator (SplitMix64) expanding one drawn seed into
/// the random insertion text.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (((u128::from(self.next_u64())) * (n as u128)) >> 64) as usize
    }

    /// A random string over printable ASCII plus newline and tab.
    fn text(&mut self, max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| match self.below(97) {
                95 => '\n',
                96 => '\t',
                k => (b' ' + k as u8) as char,
            })
            .collect()
    }
}

/// Keeps the budget-bounded card kinds of a parsed plan, clamping the
/// per-card iteration caps a mutated number literal could have inflated.
///
/// `.pss` and `.ac` cards are dropped: the plan budget is enforced at card
/// boundaries and threaded into `.tran` cards only, so a Krylov shooting
/// run or a million-point sweep inside one card is legitimately allowed to
/// finish — bounded, but far too slow for a fuzz case.
fn budgetable_cards(plan: &AnalysisPlan) -> Vec<Analysis> {
    plan.cards()
        .iter()
        .filter_map(|card| match *card {
            Analysis::Op(mut o) => {
                o.max_newton_iterations = o.max_newton_iterations.min(200);
                o.gmin_steps = o.gmin_steps.min(50);
                o.source_steps = o.source_steps.min(50);
                Some(Analysis::Op(o))
            }
            Analysis::Tran(mut t) => {
                t.max_newton_iterations = t.max_newton_iterations.min(200);
                Some(Analysis::Tran(t))
            }
            Analysis::Pss(_) | Analysis::Ac(_) => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutilated fixture netlists run under a tight budget always return:
    /// whatever the mutation did to the card options, the engine hands back
    /// a completed prefix (flagged with the exhausted axis) or an error —
    /// it never marches unboundedly.
    #[test]
    fn budgeted_plans_always_return(
        cut_start in 0usize..600,
        cut_len in 0usize..120,
        seed in 0usize..1_000_000,
    ) {
        let insert = Rng(seed as u64 ^ 0xB4D6).text(12);
        let base = energy_harvester::experiments::arrays::coupled_array_netlist(2);
        let start = cut_start.min(base.len());
        let end = (start + cut_len).min(base.len());
        // Snap to char boundaries so slicing cannot itself panic.
        let start = (0..=start).rev().find(|&i| base.is_char_boundary(i)).unwrap();
        let end = (end..=base.len()).find(|&i| base.is_char_boundary(i)).unwrap();
        let mutated = format!("{}{}{}", &base[..start], insert, &base[end..]);

        let Ok((circuit, plan)) = netlist::build_with_plan(&mutated) else {
            // A positioned parse error is a fine outcome for a fuzz case.
            return Ok(());
        };
        let Ok(plan) = AnalysisPlan::from_cards(budgetable_cards(&plan)) else {
            return Ok(());
        };
        let budget = SimulationBudget {
            max_newton_iterations: Some(200),
            max_factorizations: Some(200),
            max_accepted_steps: Some(50),
        };
        match AnalysisEngine::new().run_budgeted(&circuit, &plan, budget) {
            Ok(outcome) => {
                prop_assert!(outcome.results().len() <= plan.len());
                if let Some(cut) = outcome.truncation() {
                    prop_assert!(cut.card <= plan.len());
                    prop_assert!(!cut.reason.is_empty());
                } else {
                    prop_assert!(outcome.is_complete());
                }
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}
