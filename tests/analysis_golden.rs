//! Golden equivalence suite for the static analyses of the unified plan
//! engine: the AC small-signal solver against finite-amplitude transient
//! sinusoids, and the DC operating point against long-settle transients of
//! the shipped fixtures — the two cross-engine checks that pin the
//! linearisation (`G`/`C` extraction) and the homotopy-converged equilibria
//! to the already-trusted time-domain engine.

use energy_harvester::mna::analysis::{
    AcAnalysis, AcOptions, AnalysisEngine, FrequencySweep, OpOptions, OperatingPointAnalysis,
};
use energy_harvester::mna::circuit::{Circuit, NodeId};
use energy_harvester::mna::devices::{Capacitor, Diode, Resistor, VoltageSource};
use energy_harvester::mna::netlist;
use energy_harvester::mna::transient::{
    IntegrationMethod, TransientAnalysis, TransientOptions, TransientResult,
};
use energy_harvester::mna::waveform::Waveform;
use harvester_numerics::complex::Complex64;
use std::f64::consts::PI;
use std::path::PathBuf;

fn netlist_file(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/netlists")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Complex amplitude of the `frequency` component of a node trace, projected
/// over the last full excitation period (`samples` uniform steps of `dt`).
/// The rectangle rule on a uniform grid over an exact period is spectrally
/// accurate and annihilates the DC offset and every other harmonic exactly,
/// so ratios of these projections are discretisation-limited transfer
/// functions.
fn project(
    result: &TransientResult,
    node: NodeId,
    frequency: f64,
    dt: f64,
    samples: usize,
) -> Complex64 {
    let trace = result.voltage(node);
    assert!(trace.len() > samples, "trace too short to hold one period");
    let start = trace.len() - samples;
    let mut acc = Complex64::ZERO;
    for k in 0..samples {
        let phase = 2.0 * PI * frequency * ((start + k) as f64) * dt;
        acc += Complex64::new(phase.cos(), -phase.sin()).scale(trace[start + k]);
    }
    acc
}

/// Runs a single-frequency AC analysis and a settled transient on the same
/// circuit and asserts the `out`/`in` transfer functions agree to `tol`
/// (relative, complex). `periods` must out-run every settling time constant.
fn assert_ac_matches_transient(
    circuit: &Circuit,
    frequency: f64,
    steps_per_period: usize,
    periods: usize,
    tol: f64,
) {
    let node_in = circuit.find_node("in").expect("fixture has an 'in' node");
    let node_out = circuit.find_node("out").expect("fixture has an 'out' node");

    let ac = AcAnalysis::new(AcOptions::new(FrequencySweep::Lin, 1, frequency, frequency))
        .run(circuit)
        .expect("AC analysis must run");
    assert_eq!(ac.frequencies(), &[frequency]);
    let h_ac = ac.voltage(node_out)[0] / ac.voltage(node_in)[0];

    let period = 1.0 / frequency;
    let dt = period / steps_per_period as f64;
    let tran = TransientAnalysis::new(TransientOptions {
        dt,
        t_stop: periods as f64 * period,
        // The measured signal rides at the excitation amplitude, so Newton
        // must converge far below it for the projection to resolve the
        // transfer function.
        delta_tolerance: 1e-12,
        residual_tolerance: 1e-10,
        ..TransientOptions::default()
    })
    .run(circuit)
    .expect("transient must run");
    let h_tran = project(&tran, node_out, frequency, dt, steps_per_period)
        / project(&tran, node_in, frequency, dt, steps_per_period);

    let err = (h_tran - h_ac).abs() / h_ac.abs();
    assert!(
        err <= tol,
        "AC vs transient transfer mismatch at {frequency} Hz: \
         AC {h_ac}, transient {h_tran}, relative error {err:.3e} > {tol:.1e}"
    );
}

#[test]
fn ac_matches_transient_small_signal_on_rc_lowpass() {
    // Linear RC divider: the transient response *is* the small-signal
    // response at any amplitude, so the comparison is limited only by time
    // discretisation (trapezoidal, 4000 steps/period ⇒ ~2e-7).
    let mut c = Circuit::new();
    let n_in = c.node("in");
    let n_out = c.node("out");
    c.add(
        VoltageSource::new("V1", n_in, Circuit::GROUND, Waveform::sine(1.0, 100.0))
            .with_ac(1.0, 0.0),
    );
    c.add(Resistor::new("R1", n_in, n_out, 1e3));
    c.add(Capacitor::new("C1", n_out, Circuit::GROUND, 1e-6));

    // Sanity: the AC path itself must reproduce the textbook pole.
    let f = 100.0;
    let ac = AcAnalysis::new(AcOptions::new(FrequencySweep::Lin, 1, f, f))
        .run(&c)
        .expect("AC analysis must run");
    let h = ac.voltage(n_out)[0] / ac.voltage(n_in)[0];
    let wrc = 2.0 * PI * f * 1e3 * 1e-6;
    let analytic = Complex64::ONE / Complex64::new(1.0, wrc);
    assert!(
        (h - analytic).abs() <= 1e-12,
        "RC pole mismatch: {h} vs analytic {analytic}"
    );

    assert_ac_matches_transient(&c, f, 4000, 4, 1e-6);
}

#[test]
fn ac_matches_transient_small_signal_on_biased_rectifier() {
    // Diode linearised around a forward-biased operating point: a 0.5 V DC
    // bias sets the conductance, a 2e-5 V sinusoid rides on top. The
    // third-order curvature error scales as (δ/2nVt)²·δ ⇒ ~3e-8 relative at
    // this amplitude, far inside the 1e-6 budget, while the amplitude stays
    // ~1e7× above the Newton delta tolerance.
    let mut c = Circuit::new();
    let n_in = c.node("in");
    let n_out = c.node("out");
    let bias = Waveform::Sine {
        offset: 0.5,
        amplitude: 2e-5,
        frequency_hz: 200.0,
        phase_rad: 0.0,
        delay: 0.0,
    };
    c.add(VoltageSource::new("V1", n_in, Circuit::GROUND, bias).with_ac(1.0, 0.0));
    c.add(Diode::new("D1", n_in, n_out));
    c.add(Resistor::new("R1", n_out, Circuit::GROUND, 1e3));
    c.add(Capacitor::new("C1", n_out, Circuit::GROUND, 1e-7));

    assert_ac_matches_transient(&c, 200.0, 4000, 4, 1e-6);
}

#[test]
fn operating_point_matches_long_settle_transient_on_shipped_fixtures() {
    // Freeze each shipped fixture's excitation at a DC level (the capacitors
    // then make every node settle to the same equilibrium the homotopy-based
    // operating point solves for directly) and integrate with L-stable
    // backward Euler at a giant step. The slowest modes are the array's
    // near-zero-bias diode bleeds — C/(Is/Vt + gmin) ≈ 4e5 s — so 2000
    // steps of 1e4 s knock even those below e⁻⁵⁰ of their initial
    // deviation; every pure-RC-plus-diode fixture here is overdamped, so
    // arbitrarily large Euler steps stay stable.
    for (name, from, to) in [
        ("villard.cir", "SIN(0 1 50)", "1"),
        ("transformer_booster.cir", "SIN(0 1 50)", "1"),
        ("coupled_array4.cir", "SIN(0 2.5 1000.0)", "2.5"),
    ] {
        let text = netlist_file(name);
        let frozen = text.replace(from, to);
        assert_ne!(frozen, text, "{name}: source freeze must substitute");
        let circuit = netlist::build(&frozen).expect("frozen fixture must build");

        let op = OperatingPointAnalysis::new(OpOptions::default())
            .run(&circuit)
            .expect("frozen fixture must have an operating point");
        let settle = TransientAnalysis::new(TransientOptions {
            dt: 1e4,
            t_stop: 2e7,
            method: IntegrationMethod::BackwardEuler,
            ..TransientOptions::default()
        })
        .run(&circuit)
        .expect("frozen fixture must settle");

        for node_name in &circuit.node_names()[1..] {
            let node = circuit.find_node(node_name).expect("listed nodes exist");
            let (v_op, v_settle) = (op.voltage(node), settle.final_voltage(node));
            let tol = 1e-6 * v_op.abs().max(1.0);
            assert!(
                (v_op - v_settle).abs() <= tol,
                "{name} node {node_name}: op {v_op} vs settled {v_settle}"
            );
        }
    }
}

#[test]
fn transformer_booster_frequency_response_is_pinned() {
    // The golden frequency-response study of the transformer-booster front
    // end, run exactly as the shipped netlist card drives it (.ac dec 10 1
    // 100k on the fixture's AC-tagged source). The pinned magnitudes pick
    // out the physics: the step-up transformer's ratio-limited plateau at
    // the secondary and the smoothing cap rolling the rectified output off.
    let (circuit, plan) = netlist::build_with_plan(&netlist_file("transformer_booster.cir"))
        .expect("transformer_booster.cir must build with plan");
    let results = AnalysisEngine::new()
        .run(&circuit, &plan)
        .expect("transformer plan must run");
    let ac = results.ac().expect("the fixture carries a .ac card");
    assert_eq!(ac.len(), 51);

    // At this operating point (the source sits at 0 V at t = 0) the bridge
    // diodes are unbiased and symmetric, so the front end divides purely
    // resistively — a flat plateau whose levels pin the lossy-transformer
    // linearisation. Captured from the implementation at introduction time;
    // a drift beyond 1e-9 relative means the linearisation or the sweep
    // grid changed.
    let golden: &[(&str, f64)] = &[
        ("xb.prim", 0.9990551841522123),
        ("xb.sec_raw", 1.2492913881141432),
        ("xb.sec", 1.2483465722663556),
    ];
    for &(name, expected) in golden {
        let node = circuit.find_node(name).expect("fixture names its nodes");
        let magnitudes = ac.magnitude(node);
        for &k in &[0usize, 20, 50] {
            let rel = (magnitudes[k] - expected).abs() / expected;
            assert!(
                rel <= 1e-9,
                "|V({name})| drifted at point {k}: {} vs golden {expected}",
                magnitudes[k]
            );
        }
    }

    // The full-wave symmetry of the unbiased bridge cancels the two
    // half-bridge contributions exactly: no first-order transfer reaches
    // the output at any frequency (rectification is a second-order effect).
    let out = circuit.find_node("out").expect("fixture names out");
    for (k, magnitude) in ac.magnitude(out).iter().enumerate() {
        assert!(
            *magnitude <= 1e-12,
            "bridge null broken at point {k}: |V(out)| = {magnitude}"
        );
    }
}
